// Package metrics is a small, dependency-free observability registry for
// the serving layer: counters, gauges, histograms, and scrape-time
// callback metrics, exposed in the Prometheus text format.
//
// The package exists because the repo's hard rule is "standard library
// only": ursad needs request latency, queue depth, shed counts, and cache
// hit rates on a /metrics endpoint, but cannot import a client library.
// The subset implemented here is exactly what a scraper needs — `# HELP` /
// `# TYPE` headers, cumulative histogram buckets with `le` labels, and a
// single optional label dimension for counters — nothing more.
//
// All mutators are lock-free (atomics); WritePrometheus takes a snapshot
// per metric, so scraping never blocks the serving path. Output is sorted
// by metric name, hence deterministic and diffable in tests.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// A Registry holds a set of named metrics and renders them in the
// Prometheus text exposition format.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
}

// metric is one named time series family.
type metric interface {
	write(w io.Writer, name, help string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

// register adds the metric, panicking on a duplicate name: metric names
// are wired once at server construction, so a collision is a programming
// error, not a runtime condition.
func (r *Registry) register(name, help string, m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.metrics[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric %q", name))
	}
	r.metrics[name] = &named{help: help, m: m}
}

// named pairs a metric with its help string.
type named struct {
	help string
	m    metric
}

func (n *named) write(w io.Writer, name, _ string) { n.m.write(w, name, n.help) }

// WritePrometheus renders every registered metric, sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	ms := make([]metric, len(names))
	sort.Strings(names)
	for i, name := range names {
		ms[i] = r.metrics[name]
	}
	r.mu.Unlock()
	for i, name := range names {
		ms[i].write(w, name, "")
	}
}

// Handler returns an http.Handler serving the registry as
// text/plain; version=0.0.4 (the Prometheus exposition content type).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// ---------------------------------------------------------------- counter

// A Counter is a monotonically increasing integer.
type Counter struct {
	v atomic.Uint64
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) write(w io.Writer, name, help string) {
	writeHeader(w, name, help, "counter")
	fmt.Fprintf(w, "%s %d\n", name, c.v.Load())
}

// ------------------------------------------------------------ counter vec

// A CounterVec is a family of counters keyed by one label value (e.g.
// compile outcomes by pipeline method). Label values are created on first
// use and live for the registry's lifetime; the expected cardinality is
// small and bounded (method names, endpoint names, outcome classes).
type CounterVec struct {
	label string
	mu    sync.Mutex
	vals  map[string]*Counter
}

// CounterVec registers and returns a new labeled counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	cv := &CounterVec{label: label, vals: make(map[string]*Counter)}
	r.register(name, help, cv)
	return cv
}

// With returns the counter for the given label value, creating it at zero
// on first use.
func (cv *CounterVec) With(value string) *Counter {
	cv.mu.Lock()
	defer cv.mu.Unlock()
	c, ok := cv.vals[value]
	if !ok {
		c = &Counter{}
		cv.vals[value] = c
	}
	return c
}

func (cv *CounterVec) write(w io.Writer, name, help string) {
	writeHeader(w, name, help, "counter")
	cv.mu.Lock()
	vals := make([]string, 0, len(cv.vals))
	for v := range cv.vals {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	counters := make([]*Counter, len(vals))
	for i, v := range vals {
		counters[i] = cv.vals[v]
	}
	cv.mu.Unlock()
	for i, v := range vals {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", name, cv.label, v, counters[i].Value())
	}
}

// -------------------------------------------------------------- gauge vec

// A GaugeVec is a family of gauges keyed by one label value (e.g. backend
// health by backend address). Like CounterVec, label values are created
// on first use and live forever; cardinality is expected to be small and
// bounded.
type GaugeVec struct {
	label string
	mu    sync.Mutex
	vals  map[string]*Gauge
}

// GaugeVec registers and returns a new labeled gauge family.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	gv := &GaugeVec{label: label, vals: make(map[string]*Gauge)}
	r.register(name, help, gv)
	return gv
}

// With returns the gauge for the given label value, creating it at zero
// on first use.
func (gv *GaugeVec) With(value string) *Gauge {
	gv.mu.Lock()
	defer gv.mu.Unlock()
	g, ok := gv.vals[value]
	if !ok {
		g = &Gauge{}
		gv.vals[value] = g
	}
	return g
}

func (gv *GaugeVec) write(w io.Writer, name, help string) {
	writeHeader(w, name, help, "gauge")
	gv.mu.Lock()
	vals := make([]string, 0, len(gv.vals))
	for v := range gv.vals {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	gauges := make([]*Gauge, len(vals))
	for i, v := range vals {
		gauges[i] = gv.vals[v]
	}
	gv.mu.Unlock()
	for i, v := range vals {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", name, gv.label, v, gauges[i].Value())
	}
}

// ------------------------------------------------------------------ gauge

// A Gauge is an integer that can go up and down (queue depth, in-flight
// requests).
type Gauge struct {
	v atomic.Int64
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, g)
	return g
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) write(w io.Writer, name, help string) {
	writeHeader(w, name, help, "gauge")
	fmt.Fprintf(w, "%s %d\n", name, g.v.Load())
}

// ------------------------------------------------------------------- func

// funcMetric evaluates a callback at scrape time — for values owned by
// another subsystem (measure.Cache statistics) that would be racy or
// redundant to mirror into registry state.
type funcMetric struct {
	typ string
	fn  func() float64
}

// Func registers a scrape-time callback metric. typ is the Prometheus
// type to advertise ("counter" for monotone values like cache hits,
// "gauge" otherwise).
func (r *Registry) Func(name, help, typ string, fn func() float64) {
	r.register(name, help, &funcMetric{typ: typ, fn: fn})
}

func (f *funcMetric) write(w io.Writer, name, help string) {
	writeHeader(w, name, help, f.typ)
	fmt.Fprintf(w, "%s %s\n", name, formatFloat(f.fn()))
}

// -------------------------------------------------------------- histogram

// A Histogram counts observations into cumulative buckets (Prometheus
// `le` semantics) and tracks their sum. Observe is lock-free; the bucket
// bounds are fixed at construction.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf is implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomicFloat
}

// DefBuckets is a latency spread (in seconds) suited to compile requests:
// sub-millisecond block compiles up to multi-second batch jobs.
var DefBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// GapBuckets suits heuristic-versus-optimal gap histograms (whole words
// or registers): most gaps are zero or a small integer, with a long tail
// on adversarial blocks.
var GapBuckets = []float64{0, 1, 2, 3, 5, 8, 13, 21, 34}

// IIBuckets suits initiation-interval histograms (whole cycles per loop
// iteration): tight kernels land in the low single digits, wide or
// recurrence-bound kernels stretch into the tens.
var IIBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}

// Histogram registers and returns a new histogram with the given upper
// bounds (nil means DefBuckets). Bounds must be strictly ascending.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q bounds not ascending", name))
		}
	}
	h := &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds))}
	r.register(name, help, h)
	return h
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	h.sum.add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

func (h *Histogram) write(w io.Writer, name, help string) {
	writeHeader(w, name, help, "histogram")
	h.writeSeries(w, name, "")
}

// writeSeries renders the bucket/sum/count lines, splicing extraLabels
// (e.g. `backend="a",`) before the le label — shared by plain histograms
// and HistogramVec members.
func (h *Histogram) writeSeries(w io.Writer, name, extraLabels string) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, extraLabels, formatFloat(b), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, extraLabels, h.count.Load())
	if extraLabels == "" {
		fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.sum.load()))
		fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %s\n", name, strings.TrimSuffix(extraLabels, ","), formatFloat(h.sum.load()))
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, strings.TrimSuffix(extraLabels, ","), h.count.Load())
	}
}

// ---------------------------------------------------------- histogram vec

// A HistogramVec is a family of histograms keyed by one label value (e.g.
// per-backend request latency at the cluster router). All members share
// the bucket bounds fixed at registration.
type HistogramVec struct {
	label  string
	bounds []float64
	mu     sync.Mutex
	vals   map[string]*Histogram
}

// HistogramVec registers and returns a new labeled histogram family with
// the given upper bounds (nil means DefBuckets).
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q bounds not ascending", name))
		}
	}
	hv := &HistogramVec{label: label, bounds: bounds, vals: make(map[string]*Histogram)}
	r.register(name, help, hv)
	return hv
}

// With returns the histogram for the given label value, creating it empty
// on first use.
func (hv *HistogramVec) With(value string) *Histogram {
	hv.mu.Lock()
	defer hv.mu.Unlock()
	h, ok := hv.vals[value]
	if !ok {
		h = &Histogram{bounds: hv.bounds, buckets: make([]atomic.Uint64, len(hv.bounds))}
		hv.vals[value] = h
	}
	return h
}

func (hv *HistogramVec) write(w io.Writer, name, help string) {
	writeHeader(w, name, help, "histogram")
	hv.mu.Lock()
	vals := make([]string, 0, len(hv.vals))
	for v := range hv.vals {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	hists := make([]*Histogram, len(vals))
	for i, v := range vals {
		hists[i] = hv.vals[v]
	}
	hv.mu.Unlock()
	for i, v := range vals {
		hists[i].writeSeries(w, name, fmt.Sprintf("%s=%q,", hv.label, v))
	}
}

// atomicFloat is a float64 accumulated via compare-and-swap on its bits.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// ---------------------------------------------------------------- helpers

func writeHeader(w io.Writer, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
