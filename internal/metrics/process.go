package metrics

import "sync/atomic"

// Process-wide compiler counters. The reduction loop runs deep inside
// internal/core, far below any Registry; a registry handle cannot be
// threaded there without widening every allocator API. Instead core bumps
// these package-level atomics and the serving layer surfaces them at scrape
// time through Registry.Func, the same pattern Prometheus clients use for
// process collectors.

var candidateEvals atomic.Uint64

// AddCandidateEvals records n tentative candidate evaluations (one per
// candidate scored by the reduction loop, across all styles and blocks).
func AddCandidateEvals(n uint64) { candidateEvals.Add(n) }

// CandidateEvals returns the process-wide total of tentative candidate
// evaluations performed by the reduction loop.
func CandidateEvals() uint64 { return candidateEvals.Load() }

var evalIdleNanos atomic.Uint64

// AddEvalIdleNanos records nanoseconds evaluator workers spent idle during
// a candidate-evaluation batch: batch wall time times the worker count,
// minus the summed per-job busy time. Persistent idle time at high -j means
// the batch is too small or too skewed to fill the pool.
func AddEvalIdleNanos(n uint64) { evalIdleNanos.Add(n) }

// EvalIdleNanos returns the process-wide evaluator worker idle time.
func EvalIdleNanos() uint64 { return evalIdleNanos.Load() }

var evalBusyNanos atomic.Uint64

// AddEvalBusyNanos records nanoseconds evaluator workers spent running
// candidate evaluations (the busy complement of AddEvalIdleNanos).
func AddEvalBusyNanos(n uint64) { evalBusyNanos.Add(n) }

// EvalBusyNanos returns the process-wide evaluator worker busy time.
func EvalBusyNanos() uint64 { return evalBusyNanos.Load() }

var specEvals, specHits atomic.Uint64

// AddSpeculativeEvals records n candidate evaluations performed
// speculatively on idle workers between reduction iterations.
func AddSpeculativeEvals(n uint64) { specEvals.Add(n) }

// SpeculativeEvals returns the process-wide speculative evaluation total.
func SpeculativeEvals() uint64 { return specEvals.Load() }

// AddSpeculativeHits records n speculative results that the next iteration
// actually consumed (the rest were invalidated or never requested).
func AddSpeculativeHits(n uint64) { specHits.Add(n) }

// SpeculativeHits returns the process-wide speculative hit total.
func SpeculativeHits() uint64 { return specHits.Load() }
