package metrics

import "sync/atomic"

// Process-wide compiler counters. The reduction loop runs deep inside
// internal/core, far below any Registry; a registry handle cannot be
// threaded there without widening every allocator API. Instead core bumps
// these package-level atomics and the serving layer surfaces them at scrape
// time through Registry.Func, the same pattern Prometheus clients use for
// process collectors.

var candidateEvals atomic.Uint64

// AddCandidateEvals records n tentative candidate evaluations (one per
// candidate scored by the reduction loop, across all styles and blocks).
func AddCandidateEvals(n uint64) { candidateEvals.Add(n) }

// CandidateEvals returns the process-wide total of tentative candidate
// evaluations performed by the reduction loop.
func CandidateEvals() uint64 { return candidateEvals.Load() }
