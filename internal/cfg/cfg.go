// Package cfg builds the control-flow graph over a function's basic blocks
// and collects execution profiles, the inputs trace selection needs
// (paper §2, [Fis81]).
package cfg

import (
	"fmt"
	"sort"

	"ursa/internal/ir"
)

// Graph is a function's control-flow graph. Block indices follow the
// function's layout order; fall-through edges go to the next block.
type Graph struct {
	Func   *ir.Func
	Blocks []*ir.Block
	succ   [][]int
	pred   [][]int
	index  map[string]int
}

// Build derives the CFG from branch targets and layout fall-through.
func Build(f *ir.Func) (*Graph, error) {
	g := &Graph{
		Func:   f,
		Blocks: f.Blocks,
		succ:   make([][]int, len(f.Blocks)),
		pred:   make([][]int, len(f.Blocks)),
		index:  make(map[string]int, len(f.Blocks)),
	}
	for i, b := range f.Blocks {
		g.index[b.Label] = i
	}
	addEdge := func(a, b int) {
		g.succ[a] = append(g.succ[a], b)
		g.pred[b] = append(g.pred[b], a)
	}
	for i, b := range f.Blocks {
		term := terminator(b)
		switch {
		case term == nil:
			if i+1 < len(f.Blocks) {
				addEdge(i, i+1)
			}
		case term.Op == ir.Br:
			t, ok := g.index[term.Sym]
			if !ok {
				return nil, fmt.Errorf("cfg: unknown target %q", term.Sym)
			}
			addEdge(i, t)
		case term.Op == ir.BrTrue || term.Op == ir.BrFalse:
			t, ok := g.index[term.Sym]
			if !ok {
				return nil, fmt.Errorf("cfg: unknown target %q", term.Sym)
			}
			addEdge(i, t)
			if i+1 < len(f.Blocks) {
				addEdge(i, i+1)
			}
		case term.Op == ir.Ret:
			// no successors
		}
	}
	return g, nil
}

func terminator(b *ir.Block) *ir.Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	if last := b.Instrs[len(b.Instrs)-1]; last.IsBranch() {
		return last
	}
	return nil
}

// Index returns the block index for a label, or -1.
func (g *Graph) Index(label string) int {
	if i, ok := g.index[label]; ok {
		return i
	}
	return -1
}

// Succs returns the successor indices of block i.
func (g *Graph) Succs(i int) []int { return g.succ[i] }

// Preds returns the predecessor indices of block i.
func (g *Graph) Preds(i int) []int { return g.pred[i] }

// Profile holds execution counts gathered by a profiling interpretation.
type Profile struct {
	// Block counts executions per block index.
	Block []int64
	// Edge counts taken transitions between block indices.
	Edge map[[2]int]int64
}

// EdgeCount returns the recorded count for the edge a -> b.
func (p *Profile) EdgeCount(a, b int) int64 { return p.Edge[[2]int{a, b}] }

// ProfileRun interprets the function from its entry against a copy of init,
// recording block and edge counts. maxSteps bounds total instructions.
func ProfileRun(g *Graph, init *ir.State, maxSteps int) (*Profile, error) {
	f := g.Func
	if len(g.Blocks) == 0 {
		return &Profile{Edge: map[[2]int]int64{}}, nil
	}
	st := init.Clone()
	prof := &Profile{Block: make([]int64, len(g.Blocks)), Edge: map[[2]int]int64{}}
	cur := 0
	steps := 0
	for {
		prof.Block[cur]++
		next := -1
		exited := false
		for _, in := range g.Blocks[cur].Instrs {
			if steps++; steps > maxSteps {
				return nil, ir.ErrStepLimit
			}
			switch in.Op {
			case ir.Br:
				next = g.Index(in.Sym)
			case ir.BrTrue:
				if st.Regs[in.Args[0]].Int() != 0 {
					next = g.Index(in.Sym)
				}
			case ir.BrFalse:
				if st.Regs[in.Args[0]].Int() == 0 {
					next = g.Index(in.Sym)
				}
			case ir.Ret:
				exited = true
			default:
				st.Exec(f, in)
			}
			if next >= 0 || exited {
				break
			}
		}
		if exited {
			return prof, nil
		}
		if next < 0 {
			if cur+1 >= len(g.Blocks) {
				return prof, nil
			}
			next = cur + 1
		}
		prof.Edge[[2]int{cur, next}]++
		cur = next
	}
}

// HottestBlocks returns block indices sorted by descending execution count
// (ties by index).
func (p *Profile) HottestBlocks() []int {
	idx := make([]int, len(p.Block))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return p.Block[idx[a]] > p.Block[idx[b]]
	})
	return idx
}
