package cfg

import (
	"testing"

	"ursa/internal/frontend"
	"ursa/internal/ir"
)

func loopUnit(t *testing.T) *frontend.Unit {
	t.Helper()
	u, err := frontend.Compile(`
		var s = 0;
		for i = 0 to 10 {
			if (c[i] > 0) { s = s + c[i]; } else { s = s - 1; }
		}
		out[0] = s;
	`, frontend.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return u
}

func TestBuildStructure(t *testing.T) {
	u := loopUnit(t)
	g, err := Build(u.Func)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(g.Blocks) != len(u.Func.Blocks) {
		t.Fatalf("blocks = %d", len(g.Blocks))
	}
	// Every non-returning block must have at least one successor except
	// the layout-last block.
	for i := range g.Blocks {
		if i == len(g.Blocks)-1 {
			continue
		}
		if len(g.Succs(i)) == 0 {
			t.Errorf("block %s has no successors", g.Blocks[i].Label)
		}
		for _, s := range g.Succs(i) {
			found := false
			for _, p := range g.Preds(s) {
				if p == i {
					found = true
				}
			}
			if !found {
				t.Errorf("edge %d->%d missing reverse link", i, s)
			}
		}
	}
}

func TestBuildRejectsUnknownTarget(t *testing.T) {
	f := ir.NewFunc("bad")
	b := f.NewBlock("entry")
	b.Append(&ir.Instr{Op: ir.Br, Sym: "nowhere"})
	if _, err := Build(f); err == nil {
		t.Fatal("unknown branch target accepted")
	}
}

func TestProfileRunCounts(t *testing.T) {
	u := loopUnit(t)
	g, err := Build(u.Func)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	init := ir.NewState()
	for i := int64(0); i < 10; i++ {
		v := int64(1)
		if i%3 == 0 {
			v = -1 // 4 of 10 iterations take the else side
		}
		init.StoreInt("c", i, v)
	}
	prof, err := ProfileRun(g, init, 100000)
	if err != nil {
		t.Fatalf("ProfileRun: %v", err)
	}
	// The entry block runs once.
	if prof.Block[0] != 1 {
		t.Errorf("entry count = %d, want 1", prof.Block[0])
	}
	// The loop head runs 11 times (10 iterations + exit test).
	head := -1
	for i, b := range g.Blocks {
		if prof.Block[i] == 11 {
			head = i
			_ = b
		}
	}
	if head < 0 {
		t.Errorf("no block ran 11 times: %v", prof.Block)
	}
	// Then/else split must be 6/4.
	counts := map[int64]int{}
	for _, c := range prof.Block {
		counts[c]++
	}
	if counts[6] == 0 || counts[4] == 0 {
		t.Errorf("then/else counts not 6/4: %v", prof.Block)
	}
	// Hottest block ordering is descending.
	hot := prof.HottestBlocks()
	for i := 1; i < len(hot); i++ {
		if prof.Block[hot[i-1]] < prof.Block[hot[i]] {
			t.Fatal("HottestBlocks not sorted")
		}
	}
}

func TestProfileRunStepLimit(t *testing.T) {
	f := ir.MustParse("func spin {\nentry:\n\tbr entry\n}")
	g, err := Build(f)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := ProfileRun(g, ir.NewState(), 10); err != ir.ErrStepLimit {
		t.Fatalf("err = %v, want step limit", err)
	}
}
