// Package regalloc implements the classic phase-ordered baseline URSA
// argues against (§1): Chaitin-style graph-coloring register allocation
// performed on the sequential code before scheduling. Reusing registers
// introduces anti and output dependences that later restrict the scheduler;
// running this allocator first and the list scheduler second forms the
// "postpass scheduling" pipeline of the evaluation.
package regalloc

import (
	"errors"
	"fmt"
	"sort"

	"ursa/internal/ir"
	"ursa/internal/machine"
)

// ErrTooFewRegs reports structural infeasibility: some point of the block
// needs more simultaneously register-resident values of one class than the
// machine provides (for straight-line code, typically more live-out values
// than registers), so no amount of spilling can make it colorable.
var ErrTooFewRegs = errors.New("regalloc: too few registers")

// Result reports one coloring run.
type Result struct {
	// Block is the rewritten block over physical registers (register names
	// r0..rk / f0..fk in a fresh function).
	Block *ir.Block
	// OutMap maps the original live-out virtual registers to physical
	// registers.
	OutMap map[ir.VReg]ir.VReg
	// Spills counts spill stores inserted to make the code colorable.
	Spills int
	// RegsUsed counts distinct physical registers per class.
	RegsUsed [ir.NumClasses]int
}

// Color allocates the block's virtual registers to at most m.Regs[c]
// physical registers per class by interference-graph coloring
// (simplify/select) with iterative spilling. liveOut lists registers whose
// final values must survive the block.
func Color(b *ir.Block, m *machine.Config, liveOut map[ir.VReg]bool) (*Result, error) {
	f := b.Func
	// Work on a copy of the instruction list; spill iterations rewrite it.
	work := make([]*ir.Instr, len(b.Instrs))
	for i, in := range b.Instrs {
		work[i] = in.Clone()
	}
	// Track current holder of each original live-out value.
	outName := map[ir.VReg]ir.VReg{}
	for v := range liveOut {
		outName[v] = v
	}

	spills := 0
	// Spill temporaries and already-spilled values have minimal live ranges:
	// re-spilling them cannot lower pressure (it only ping-pongs reloads), so
	// they are excluded from victim selection, which also bounds the rounds.
	avoid := map[ir.VReg]bool{}
	// Round bound over the ORIGINAL size: work grows as spill code is
	// inserted, so the bound must not chase it. Each round spills one
	// not-yet-spilled value, so a colorable block converges well within 2n
	// rounds; the bound only backstops a select-phase failure loop.
	maxRounds := 2*len(work) + 8
	for round := 0; ; round++ {
		if round > maxRounds {
			return nil, fmt.Errorf("%w: coloring did not converge after %d spill rounds", ErrTooFewRegs, round)
		}
		colors, spillVictim := tryColor(f, work, m, outName, avoid)
		if colors != nil {
			return rewrite(f, work, m, colors, outName, spills)
		}
		if spillVictim == ir.NoReg {
			// Blocked with only unspillable values left. Live intervals form
			// a chordal graph, so simplify blocks only when some point keeps
			// more minimal-range values live than the file holds — spilling
			// cannot fix that.
			return nil, fmt.Errorf("%w: a program point needs more live values than the register file holds", ErrTooFewRegs)
		}
		// Spill the victim everywhere: store after its defs, reload with a
		// fresh name before each use.
		work, outName = spillEverywhere(f, work, spillVictim, outName, avoid)
		avoid[spillVictim] = true
		spills++
	}
}

// liveIntervals computes, per register, the interval (defIdx, lastUseIdx]
// over the instruction indices; live-ins start at 0, live-outs extend to
// len(instrs). The half-open start encodes read-before-write register
// sharing: a value dying at an instruction does not interfere with the
// value that instruction defines.
type interval struct {
	reg        ir.VReg
	start, end int
}

func liveIntervals(instrs []*ir.Instr, heldOut map[ir.VReg]bool) []interval {
	def := map[ir.VReg]int{}
	last := map[ir.VReg]int{}
	var order []ir.VReg
	seen := map[ir.VReg]bool{}
	note := func(v ir.VReg) {
		if !seen[v] {
			seen[v] = true
			order = append(order, v)
		}
	}
	for i, in := range instrs {
		for _, u := range in.Uses() {
			note(u)
			last[u] = i
			if _, ok := def[u]; !ok {
				def[u] = -1 // live-in
			}
		}
		if in.Dst != ir.NoReg {
			note(in.Dst)
			if _, ok := def[in.Dst]; !ok {
				def[in.Dst] = i
				if _, used := last[in.Dst]; !used {
					last[in.Dst] = i
				}
			} else {
				// Redefinition (non-SSA input): extend conservatively.
				if i > last[in.Dst] {
					last[in.Dst] = i
				}
			}
		}
	}
	ivs := make([]interval, 0, len(order))
	for _, v := range order {
		end := last[v]
		if heldOut[v] {
			end = len(instrs)
		}
		ivs = append(ivs, interval{v, def[v], end})
	}
	return ivs
}

// tryColor builds the interference graph and runs simplify/select. On
// success colors is non-nil and maps every register to a color index within
// its class. On failure colors is nil and the chosen spill victim is
// returned: the longest interval among the highest-degree nodes, never one
// from avoid (re-spilling those cannot help). A nil colors with a NoReg
// victim means no spill can make the block colorable.
func tryColor(f *ir.Func, instrs []*ir.Instr, m *machine.Config, outName map[ir.VReg]ir.VReg, avoid map[ir.VReg]bool) (map[ir.VReg]int, ir.VReg) {
	heldOut := map[ir.VReg]bool{}
	for _, cur := range outName {
		heldOut[cur] = true
	}
	ivs := liveIntervals(instrs, heldOut)
	byReg := map[ir.VReg]interval{}
	for _, iv := range ivs {
		byReg[iv.reg] = iv
	}
	// Interference: intervals of the same class overlapping in (start, end].
	adj := map[ir.VReg]map[ir.VReg]bool{}
	addEdge := func(a, b ir.VReg) {
		if adj[a] == nil {
			adj[a] = map[ir.VReg]bool{}
		}
		if adj[b] == nil {
			adj[b] = map[ir.VReg]bool{}
		}
		adj[a][b] = true
		adj[b][a] = true
	}
	for i, a := range ivs {
		if adj[a.reg] == nil {
			adj[a.reg] = map[ir.VReg]bool{}
		}
		for _, b := range ivs[i+1:] {
			if f.ClassOf(a.reg) != f.ClassOf(b.reg) {
				continue
			}
			if a.start < b.end && b.start < a.end {
				addEdge(a.reg, b.reg)
			}
		}
	}

	// Simplify: repeatedly remove a node with degree < K of its class.
	removed := map[ir.VReg]bool{}
	var stack []ir.VReg
	degree := func(v ir.VReg) int {
		d := 0
		for n := range adj[v] {
			if !removed[n] {
				d++
			}
		}
		return d
	}
	regs := make([]ir.VReg, 0, len(adj))
	for v := range adj {
		regs = append(regs, v)
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })
	for len(stack) < len(regs) {
		progress := false
		for _, v := range regs {
			if removed[v] {
				continue
			}
			if degree(v) < m.Regs[f.ClassOf(v)] {
				removed[v] = true
				stack = append(stack, v)
				progress = true
			}
		}
		if !progress {
			// Blocked: choose the spill victim by score. Ranges spanning
			// more than one instruction — the ones spilling actually
			// shortens — come first. Live-out holders are legitimate
			// victims: spillEverywhere reloads them at the block end,
			// collapsing a block-long range to one instruction.
			var victim ir.VReg
			best := -1
			for _, v := range regs {
				if removed[v] || avoid[v] {
					continue
				}
				iv := byReg[v]
				length := iv.end - iv.start
				score := degree(v)*1000 + length
				if length > 1 {
					score += 1 << 24
				}
				if score > best {
					best, victim = score, v
				}
			}
			return nil, victim
		}
	}

	// Select: pop in reverse, assigning the lowest color unused by
	// colored neighbours.
	colors := map[ir.VReg]int{}
	for i := len(stack) - 1; i >= 0; i-- {
		v := stack[i]
		used := map[int]bool{}
		for n := range adj[v] {
			if c, ok := colors[n]; ok {
				used[c] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		if c >= m.Regs[f.ClassOf(v)] {
			return nil, v // optimistic select failed
		}
		colors[v] = c
	}
	return colors, ir.NoReg
}

// spillEverywhere rewrites the sequence spilling v: a store follows each
// definition, and every use reads a freshly reloaded copy. The fresh reload
// names are recorded in temps — their ranges are minimal by construction,
// so they must never be chosen as spill victims themselves.
func spillEverywhere(f *ir.Func, instrs []*ir.Instr, v ir.VReg, outName map[ir.VReg]ir.VReg, temps map[ir.VReg]bool) ([]*ir.Instr, map[ir.VReg]ir.VReg) {
	slot := "spillc." + f.NameOf(v)
	var out []*ir.Instr
	reloads := 0
	for _, in := range instrs {
		needs := false
		for _, u := range in.Uses() {
			if u == v {
				needs = true
			}
		}
		if needs {
			nv := f.NewReg(f.NameOf(v)+".c", f.ClassOf(v))
			temps[nv] = true
			out = append(out, &ir.Instr{Op: ir.SpillLoad, Dst: nv, Sym: slot})
			reloads++
			c := in.Clone()
			for i, a := range c.Args {
				if a == v {
					c.Args[i] = nv
				}
			}
			if c.Index == v {
				c.Index = nv
			}
			out = append(out, c)
		} else {
			out = append(out, in)
		}
		if in.Dst == v {
			out = append(out, &ir.Instr{Op: ir.SpillStore, Args: []ir.VReg{v}, Sym: slot})
		}
	}
	// If v held a live-out value, reload it at the very end under a fresh
	// name so it finishes in a register. The reload must still precede a
	// terminating branch, which stays last.
	var trailing *ir.Instr
	if len(out) > 0 && out[len(out)-1].IsBranch() {
		trailing = out[len(out)-1]
		out = out[:len(out)-1]
	}
	for orig, cur := range outName {
		if cur == v {
			nv := f.NewReg(f.NameOf(v)+".c", f.ClassOf(v))
			temps[nv] = true
			out = append(out, &ir.Instr{Op: ir.SpillLoad, Dst: nv, Sym: slot})
			outName[orig] = nv
		}
	}
	if trailing != nil {
		out = append(out, trailing)
	}
	return out, outName
}

// rewrite renames every register to its colored physical register in a
// fresh function and packages the result.
func rewrite(f *ir.Func, instrs []*ir.Instr, m *machine.Config, colors map[ir.VReg]int, outName map[ir.VReg]ir.VReg, spills int) (*Result, error) {
	pf := ir.NewFunc(f.Name + ".ra")
	phys := [ir.NumClasses][]ir.VReg{}
	for c := ir.Class(0); c < ir.NumClasses; c++ {
		prefix := "r"
		if c == ir.ClassFP {
			prefix = "f"
		}
		for i := 0; i < m.Regs[c]; i++ {
			phys[c] = append(phys[c], pf.NewReg(fmt.Sprintf("%s%d", prefix, i), c))
		}
	}
	res := &Result{OutMap: map[ir.VReg]ir.VReg{}, Spills: spills}
	usedColors := [ir.NumClasses]map[int]bool{}
	for c := range usedColors {
		usedColors[c] = map[int]bool{}
	}
	mapReg := func(v ir.VReg) (ir.VReg, error) {
		c, ok := colors[v]
		if !ok {
			return ir.NoReg, fmt.Errorf("regalloc: %s has no color", f.NameOf(v))
		}
		cls := f.ClassOf(v)
		usedColors[cls][c] = true
		return phys[cls][c], nil
	}
	nb := pf.NewBlock("entry")
	for _, in := range instrs {
		c := in.Clone()
		var err error
		for i, a := range c.Args {
			if c.Args[i], err = mapReg(a); err != nil {
				return nil, err
			}
		}
		if c.Index != ir.NoReg {
			if c.Index, err = mapReg(c.Index); err != nil {
				return nil, err
			}
		}
		if c.Dst != ir.NoReg {
			if c.Dst, err = mapReg(c.Dst); err != nil {
				return nil, err
			}
		}
		nb.Append(c)
	}
	for orig, cur := range outName {
		p, err := mapReg(cur)
		if err != nil {
			return nil, err
		}
		res.OutMap[orig] = p
	}
	for c := range usedColors {
		res.RegsUsed[c] = len(usedColors[c])
	}
	res.Block = nb
	return res, nil
}
