package regalloc

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"ursa/internal/ir"
	"ursa/internal/machine"
)

const paperSrc = `
func paper {
entry:
	v = load V[0]
	w = muli v, 2
	x = muli v, 3
	y = addi v, 5
	t1 = add w, x
	t2 = mul w, x
	t3 = muli y, 2
	t4 = divi y, 3
	t5 = div t1, t2
	t6 = add t3, t4
	z = add t5, t6
	store Z[0], z
}
`

// runColored executes the colored block sequentially and returns the state.
func runColored(t *testing.T, res *Result, init *ir.State) *ir.State {
	t.Helper()
	st := init.Clone()
	for _, in := range res.Block.Instrs {
		st.Exec(res.Block.Func, in)
	}
	return st
}

func TestColorNoSpillsWhenRoomy(t *testing.T) {
	f := ir.MustParse(paperSrc)
	res, err := Color(f.Blocks[0], machine.VLIW(4, 8), nil)
	if err != nil {
		t.Fatalf("Color: %v", err)
	}
	if res.Spills != 0 {
		t.Errorf("spills = %d, want 0 with 8 registers", res.Spills)
	}
	if res.RegsUsed[ir.ClassInt] > 8 {
		t.Errorf("used %d registers", res.RegsUsed[ir.ClassInt])
	}
	init := ir.NewState()
	init.StoreInt("V", 0, 7)
	st := runColored(t, res, init)
	if got := st.Mem[ir.Addr{Sym: "Z", Off: 0}].Int(); got != 28 {
		t.Errorf("Z[0] = %d, want 28", got)
	}
}

func TestColorSequentialNeedsFewRegisters(t *testing.T) {
	// In sequential order the paper example's maximum pressure is small;
	// coloring with 3 registers must succeed without spills (sequential
	// liveness, unlike the all-schedules worst case of 5).
	f := ir.MustParse(paperSrc)
	res, err := Color(f.Blocks[0], machine.VLIW(4, 4), nil)
	if err != nil {
		t.Fatalf("Color: %v", err)
	}
	if res.Spills != 0 {
		t.Errorf("spills = %d with 4 registers (sequential pressure is 4)", res.Spills)
	}
}

func TestColorSpillsWhenTight(t *testing.T) {
	f := ir.MustParse(paperSrc)
	res, err := Color(f.Blocks[0], machine.VLIW(4, 2), nil)
	if err != nil {
		t.Fatalf("Color: %v", err)
	}
	if res.Spills == 0 {
		t.Error("no spills with 2 registers")
	}
	if res.RegsUsed[ir.ClassInt] > 2 {
		t.Errorf("used %d registers, machine has 2", res.RegsUsed[ir.ClassInt])
	}
	init := ir.NewState()
	init.StoreInt("V", 0, 7)
	st := runColored(t, res, init)
	if got := st.Mem[ir.Addr{Sym: "Z", Off: 0}].Int(); got != 28 {
		t.Errorf("Z[0] = %d, want 28 after spilling", got)
	}
}

func TestColorLiveOut(t *testing.T) {
	f := ir.MustParse(`
entry:
	a = const 3
	b = muli a, 7
`)
	lo := map[ir.VReg]bool{f.Reg("b"): true}
	res, err := Color(f.Blocks[0], machine.VLIW(2, 4), lo)
	if err != nil {
		t.Fatalf("Color: %v", err)
	}
	phys, ok := res.OutMap[f.Reg("b")]
	if !ok {
		t.Fatal("no OutMap entry for b")
	}
	st := runColored(t, res, ir.NewState())
	if got := st.Regs[phys].Int(); got != 21 {
		t.Errorf("b (in %s) = %d, want 21", res.Block.Func.NameOf(phys), got)
	}
}

func TestColorLiveOutPressureConverges(t *testing.T) {
	// Fuzzer regression (testdata/fuzz): with K=2 and two live-out values
	// pinned across a two-operand instruction, the old victim selection
	// refused to spill live-out holders and looped forever re-spilling
	// just-in-time reloads. Spilling a live-out (reloading it at the block
	// end) makes this colorable.
	f := ir.MustParse(`
entry:
	lo1 = const 3
	lo2 = const 4
	a = load A[0]
	b = load A[1]
	c = add a, b
	store OUT[0], c
`)
	lo := map[ir.VReg]bool{f.Reg("lo1"): true, f.Reg("lo2"): true}
	res, err := Color(f.Blocks[0], machine.VLIW(2, 2), lo)
	if err != nil {
		t.Fatalf("Color: %v", err)
	}
	if res.RegsUsed[ir.ClassInt] > 2 {
		t.Fatalf("used %d registers, machine has 2", res.RegsUsed[ir.ClassInt])
	}
	st := runColored(t, res, func() *ir.State {
		init := ir.NewState()
		init.StoreInt("A", 0, 10)
		init.StoreInt("A", 1, 11)
		return init
	}())
	if got := st.Mem[ir.Addr{Sym: "OUT", Off: 0}].Int(); got != 21 {
		t.Errorf("OUT[0] = %d, want 21", got)
	}
	for _, name := range []string{"lo1", "lo2"} {
		phys, ok := res.OutMap[f.Reg(name)]
		if !ok {
			t.Fatalf("no OutMap entry for %s", name)
		}
		want := int64(3)
		if name == "lo2" {
			want = 4
		}
		if got := st.Regs[phys].Int(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

func TestColorTooFewRegsErrorsCleanly(t *testing.T) {
	// Fuzzer regression: three int live-outs on a two-register machine is
	// structurally uncolorable. The old round bound chased the growing spill
	// code and never fired, so Color spun forever; it must now return
	// ErrTooFewRegs promptly.
	f := ir.MustParse(`
entry:
	a = const 1
	b = const 2
	c = const 3
`)
	lo := map[ir.VReg]bool{f.Reg("a"): true, f.Reg("b"): true, f.Reg("c"): true}
	_, err := Color(f.Blocks[0], machine.VLIW(2, 2), lo)
	if !errors.Is(err, ErrTooFewRegs) {
		t.Fatalf("Color err = %v, want ErrTooFewRegs", err)
	}
}

func TestColorKeepsBranchLast(t *testing.T) {
	// Fuzzer regression (testdata/fuzz/shrunk-legality-s143.ursafuzz):
	// spilling a live-out value used to append its end-of-block reload after
	// a trailing ret, producing a block no scheduler accepts (the
	// post-branch reload and the branch form a dependence cycle).
	f := ir.MustParse(`
entry:
	a = load A[4]
	b = load A[6]
	c = load A[3]
	store O[12], b
	ret c
`)
	lo := map[ir.VReg]bool{f.Reg("a"): true}
	res, err := Color(f.Blocks[0], machine.VLIW(1, 2), lo)
	if err != nil {
		t.Fatalf("Color: %v", err)
	}
	instrs := res.Block.Instrs
	if n := len(instrs); !instrs[n-1].IsBranch() {
		t.Fatalf("last instruction is %s, want the ret last", res.Block.Func.InstrString(instrs[n-1]))
	}
	for _, in := range instrs[:len(instrs)-1] {
		if in.IsBranch() {
			t.Fatal("branch appears before the end of the block")
		}
	}
}

func TestColorRandomSemanticsPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		f := ir.NewFunc("rand")
		b := f.NewBlock("entry")
		var vals []ir.VReg
		n := 5 + rng.Intn(15)
		for i := 0; i < n; i++ {
			dst := f.NewReg(fmt.Sprintf("v%d", i), ir.ClassInt)
			if len(vals) == 0 || rng.Intn(4) == 0 {
				b.Append(&ir.Instr{Op: ir.Load, Dst: dst, Sym: "A", Off: int64(i % 6)})
			} else {
				a := vals[rng.Intn(len(vals))]
				c := vals[rng.Intn(len(vals))]
				b.Append(&ir.Instr{Op: ir.Add, Dst: dst, Args: []ir.VReg{a, c}})
			}
			vals = append(vals, dst)
		}
		b.Append(&ir.Instr{Op: ir.Store, Args: []ir.VReg{vals[len(vals)-1]}, Sym: "OUT"})

		init := ir.NewState()
		for i := int64(0); i < 6; i++ {
			init.StoreInt("A", i, rng.Int63n(100))
		}
		ref := init.Clone()
		for _, in := range b.Instrs {
			ref.Exec(f, in)
		}

		k := 2 + rng.Intn(4)
		res, err := Color(b, machine.VLIW(2, k), nil)
		if err != nil {
			t.Fatalf("trial %d (k=%d): %v", trial, k, err)
		}
		if res.RegsUsed[ir.ClassInt] > k {
			t.Fatalf("trial %d: used %d of %d regs", trial, res.RegsUsed[ir.ClassInt], k)
		}
		st := runColored(t, res, init)
		want := ref.Mem[ir.Addr{Sym: "OUT"}]
		if got := st.Mem[ir.Addr{Sym: "OUT"}]; got != want {
			t.Fatalf("trial %d (k=%d): OUT = %d, want %d", trial, k, got.Int(), want.Int())
		}
	}
}
