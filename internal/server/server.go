// Package server is ursad's serving layer: an HTTP/JSON front end over
// the compilation pipeline that turns the one-shot CLIs into a long-lived
// compile-as-a-service daemon.
//
// The server exists to amortize the allocator's combinatorial cost across
// requests: a process-wide measure.Cache is shared by every compile, so
// repeated workloads (the common case for a service fronting a test farm
// or a JIT tier) skip the O(N³) matching entirely. Around that sits the
// operational shell a service needs:
//
//   - Bounded admission: at most MaxConcurrent requests compile at once;
//     up to QueueDepth more wait; beyond that the server sheds load with
//     429 + Retry-After instead of growing latency or memory without
//     bound.
//   - Per-request limits: a body-size cap and a compile deadline, plumbed
//     as a context through the parallel driver so cancelled work stops
//     dispatching instead of burning workers.
//   - Failure isolation: a panic anywhere in a request is converted to a
//     driver.PanicError and a 500, never a process crash.
//   - Observability: every interesting internal — request latency, queue
//     depth, sheds, compile outcomes by pipeline method, cache hit rates
//     and size — is a Prometheus series on GET /metrics.
//
// Endpoints: POST /v1/compile, POST /v1/batch, GET /v1/machines,
// GET /healthz, GET /metrics. See docs/SERVER.md for the wire schema.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync/atomic"
	"time"

	"ursa/internal/dag"
	"ursa/internal/driver"
	"ursa/internal/exact"
	"ursa/internal/ir"
	"ursa/internal/machine"
	"ursa/internal/measure"
	"ursa/internal/metrics"
	"ursa/internal/modsched"
	"ursa/internal/pipeline"
	"ursa/internal/store"
	"ursa/internal/target"
	"ursa/internal/workload"
)

// Config tunes the server. The zero value serves with sensible defaults.
type Config struct {
	// MaxConcurrent bounds simultaneously compiling requests. Zero means
	// GOMAXPROCS.
	MaxConcurrent int
	// QueueDepth bounds requests waiting for a compile slot beyond
	// MaxConcurrent; a request arriving past the bound is shed with 429.
	// Zero means 64.
	QueueDepth int
	// RequestTimeout bounds one request's compile time (queue wait
	// included). Zero means 60s.
	RequestTimeout time.Duration
	// MaxBodyBytes caps a request body. Zero means 4 MiB.
	MaxBodyBytes int64
	// DrainTimeout bounds the graceful shutdown: how long Serve waits for
	// in-flight requests after its context is cancelled. Zero means 30s.
	DrainTimeout time.Duration
	// Cache is the measurement cache shared by every request. Nil means a
	// fresh process-wide cache.
	Cache *measure.Cache
	// Artifacts is the tiered compile-result cache (memory → disk → peer).
	// Nil disables artifact caching: every compile runs the allocator and
	// /v1/cache answers 404.
	Artifacts *store.TieredCache
	// Registry receives the server's metrics. Nil means a fresh registry
	// (exposed on GET /metrics either way).
	Registry *metrics.Registry
	// Logf, when non-nil, receives one line per shed, panic, and
	// lifecycle event.
	Logf func(format string, args ...any)
	// EnablePprof mounts net/http/pprof's profiling handlers under
	// /debug/pprof/. Off by default: the profile endpoints expose
	// internals (and Profile/Trace burn CPU), so they are opt-in via
	// the CLIs' -pprof flag rather than always-on.
	EnablePprof bool
}

// Server is the HTTP serving layer. Create with New; it is safe for
// concurrent use by any number of connections.
type Server struct {
	cfg       Config
	cache     *measure.Cache
	artifacts *store.TieredCache
	reg       *metrics.Registry
	mux       *http.ServeMux

	slots    chan struct{} // admission semaphore: one token per running compile
	queued   atomic.Int64
	inflight atomic.Int64
	draining atomic.Bool

	mRequests   *metrics.CounterVec
	mResponses  *metrics.CounterVec
	mLatency    *metrics.Histogram
	mShed       *metrics.Counter
	mPanics     *metrics.Counter
	mQueue      *metrics.Gauge
	mInflight   *metrics.Gauge
	mCompileOK  *metrics.CounterVec
	mCompileErr *metrics.CounterVec
	mServedBy   *metrics.CounterVec
	mGap        *metrics.HistogramVec
	mLoopII     *metrics.Histogram
	mLoopMII    *metrics.Histogram

	// testHook, when non-nil, runs inside every compile request while it
	// holds an admission slot — the package tests' lever for saturating
	// the queue and exercising graceful drain deterministically.
	testHook func()
}

// New returns a server with its routes and metrics registered.
func New(cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 60 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 4 << 20
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	if cfg.Cache == nil {
		cfg.Cache = measure.NewCache()
	}
	if cfg.Registry == nil {
		cfg.Registry = metrics.NewRegistry()
	}
	s := &Server{
		cfg:       cfg,
		cache:     cfg.Cache,
		artifacts: cfg.Artifacts,
		reg:       cfg.Registry,
		slots:     make(chan struct{}, cfg.MaxConcurrent),
	}

	r := s.reg
	s.mRequests = r.CounterVec("ursad_requests_total", "requests received by endpoint", "endpoint")
	s.mResponses = r.CounterVec("ursad_responses_total", "responses sent by status code", "code")
	s.mLatency = r.Histogram("ursad_request_seconds", "request latency in seconds", nil)
	s.mShed = r.Counter("ursad_shed_total", "requests shed with 429 because the admission queue was full")
	s.mPanics = r.Counter("ursad_panics_total", "request panics recovered to 500")
	s.mQueue = r.Gauge("ursad_queue_depth", "requests waiting for a compile slot")
	s.mInflight = r.Gauge("ursad_inflight", "requests currently being served")
	s.mCompileOK = r.CounterVec("ursad_compile_total", "successful compiles by pipeline method", "method")
	s.mCompileErr = r.CounterVec("ursad_compile_errors_total", "failed compiles by pipeline method", "method")
	s.mServedBy = r.CounterVec("ursad_artifact_served_total", "compile responses by serving cache tier (or \"compiled\")", "tier")
	s.mGap = r.HistogramVec("ursa_heuristic_gap", "heuristic distance from the exact solver's proven optimum, by dimension (words, intregs, fpregs); observed on gap-enabled compiles", "dimension", metrics.GapBuckets)
	s.mLoopII = r.Histogram("ursa_loop_ii", "achieved initiation interval (steady-state cycles per iteration) of software-pipelined loops", metrics.IIBuckets)
	s.mLoopMII = r.Histogram("ursa_loop_mii", "minimum initiation interval lower bound max(resMII, recMII) of software-pipelined loops", metrics.IIBuckets)
	r.Func("ursad_cache_hits_total", "measurement cache hits", "counter", func() float64 {
		h, _ := s.cache.Stats()
		return float64(h)
	})
	r.Func("ursad_cache_misses_total", "measurement cache misses", "counter", func() float64 {
		_, m := s.cache.Stats()
		return float64(m)
	})
	r.Func("ursad_cache_entries", "measurement cache entries", "gauge", func() float64 {
		n, _ := s.cache.Entries()
		return float64(n)
	})
	r.Func("ursad_cache_bytes", "approximate bytes retained by the measurement cache", "gauge", func() float64 {
		_, b := s.cache.Entries()
		return float64(b)
	})
	r.Func("ursa_candidate_evals_total", "reduction candidates evaluated by the core loop", "counter", func() float64 {
		return float64(metrics.CandidateEvals())
	})
	r.Func("ursa_eval_busy_seconds_total", "cumulative wall time evaluator workers spent scoring candidates", "counter", func() float64 {
		return float64(metrics.EvalBusyNanos()) / 1e9
	})
	r.Func("ursa_eval_idle_seconds_total", "cumulative wall time evaluator workers spent idle inside a batch (fan-out imbalance)", "counter", func() float64 {
		return float64(metrics.EvalIdleNanos()) / 1e9
	})
	r.Func("ursa_speculative_evals_total", "candidates pre-scored speculatively between reduction iterations", "counter", func() float64 {
		return float64(metrics.SpeculativeEvals())
	})
	r.Func("ursa_speculative_hits_total", "speculative pre-scores that were consumed by the next iteration", "counter", func() float64 {
		return float64(metrics.SpeculativeHits())
	})
	s.registerCacheMetrics()

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/compile", s.instrument("compile", s.handleCompile))
	mux.HandleFunc("/v1/batch", s.instrument("batch", s.handleBatch))
	mux.HandleFunc("/v1/machines", s.instrument("machines", s.handleMachines))
	mux.HandleFunc("/v1/cache/", s.instrument("cache", s.handleCache))
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.Handle("/metrics", s.reg.Handler())
	if cfg.EnablePprof {
		// Explicit handlers, not the net/http/pprof init side effect:
		// importing the package registers on http.DefaultServeMux, which
		// this server never serves.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.mux = mux
	return s
}

// Handler returns the server's routed handler — mountable into any
// http.Server or mux (ursad and `ursac -listen` both mount it).
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the server's metrics registry.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Cache returns the shared measurement cache.
func (s *Server) Cache() *measure.Cache { return s.cache }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// ------------------------------------------------------------- lifecycle

// Serve serves on the listener until ctx is cancelled, then drains: it
// stops accepting connections, waits up to DrainTimeout for in-flight
// requests, and returns nil on a clean drain. During the drain /healthz
// reports 503 so load balancers stop routing here.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.draining.Store(true)
	s.logf("ursad: draining (%d in flight, %d queued)", s.inflight.Load(), s.queued.Load())
	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("server: drain: %w", err)
	}
	s.logf("ursad: drained")
	return nil
}

// ListenAndServe listens on addr and calls Serve.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.logf("ursad: listening on %s", ln.Addr())
	return s.Serve(ctx, ln)
}

// ------------------------------------------------------------- admission

// errShed reports a request rejected by the full admission queue.
var errShed = errors.New("server: admission queue full")

// admit acquires a compile slot, waiting in the bounded queue. It returns
// a release function on success; errShed when the queue is full (the
// caller sheds with 429); or the context error when the deadline expires
// while queued.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	release = func() { <-s.slots }
	select {
	case s.slots <- struct{}{}:
		return release, nil
	default:
	}
	if s.queued.Add(1) > int64(s.cfg.QueueDepth) {
		s.queued.Add(-1)
		return nil, errShed
	}
	s.mQueue.Inc()
	defer func() {
		s.queued.Add(-1)
		s.mQueue.Dec()
	}()
	select {
	case s.slots <- struct{}{}:
		return release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// retryAfterSeconds estimates when capacity frees up: one queue drain's
// worth of requests ahead of us, at least a second.
func (s *Server) retryAfterSeconds() int {
	n := int(s.queued.Load())
	sec := (n + s.cfg.MaxConcurrent) / s.cfg.MaxConcurrent
	if sec < 1 {
		sec = 1
	}
	return sec
}

// ------------------------------------------------------------ middleware

// instrument wraps a handler with panic recovery, request counting, and
// latency observation. Panics become driver.PanicError + 500: the same
// containment the worker pool gives per-job, applied per-request.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.mRequests.With(endpoint).Inc()
		s.mInflight.Inc()
		s.inflight.Add(1)
		defer func() {
			s.inflight.Add(-1)
			s.mInflight.Dec()
			s.mLatency.Observe(time.Since(start).Seconds())
			if rv := recover(); rv != nil {
				stack := make([]byte, 64<<10)
				stack = stack[:runtime.Stack(stack, false)]
				perr := &driver.PanicError{Value: rv, Stack: stack}
				s.mPanics.Inc()
				s.logf("ursad: %s: %v\n%s", endpoint, perr, perr.Stack)
				s.writeError(w, http.StatusInternalServerError, perr.Error())
			}
		}()
		h(w, r)
	}
}

// writeJSON writes a 200 response body.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
	s.mResponses.With(fmt.Sprint(code)).Inc()
}

func (s *Server) writeError(w http.ResponseWriter, code int, msg string) {
	s.writeJSON(w, code, ErrorResponse{Error: msg})
}

// apiError carries an HTTP status with a message through the compile path.
type apiError struct {
	code int
	msg  string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) *apiError {
	return &apiError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// errorStatus maps a compile-path error to its HTTP status: 400 for
// malformed requests, 504 for deadline expiry, 422 for programs the
// pipeline rejects (legitimate compile failures), 500 for panics.
func errorStatus(err error) int {
	var ae *apiError
	switch {
	case errors.As(err, &ae):
		return ae.code
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		var pe *driver.PanicError
		if errors.As(err, &pe) {
			return http.StatusInternalServerError
		}
		return http.StatusUnprocessableEntity
	}
}

// -------------------------------------------------------------- handlers

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := HealthJSON{
		Status:        "ok",
		Draining:      s.draining.Load(),
		InFlight:      s.inflight.Load(),
		Queued:        s.queued.Load(),
		MeasureCache:  s.measureCacheJSON(),
		ArtifactCache: s.artifactStats(),
	}
	code := http.StatusOK
	if h.Draining {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, h)
}

func (s *Server) handleMachines(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	catalog := target.Presets()
	out := make([]MachineJSON, len(catalog))
	for i := range catalog {
		out[i] = machineJSON(&catalog[i])
	}
	s.writeJSON(w, http.StatusOK, out)
}

// decode reads a bounded JSON body into v.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) error {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return &apiError{code: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("body exceeds %d bytes", s.cfg.MaxBodyBytes)}
		}
		return badRequest("bad request body: %v", err)
	}
	return nil
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req CompileRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeError(w, errorStatus(err), err.Error())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	release, err := s.admit(ctx)
	if errors.Is(err, errShed) {
		s.shed(w)
		return
	}
	if err != nil {
		s.writeError(w, http.StatusGatewayTimeout, "timed out waiting for a compile slot")
		return
	}
	defer release()
	if s.testHook != nil {
		s.testHook()
	}

	resp, err := s.compileOne(ctx, &req)
	if err != nil {
		s.writeError(w, errorStatus(err), err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) shed(w http.ResponseWriter) {
	s.mShed.Inc()
	sec := s.retryAfterSeconds()
	w.Header().Set("Retry-After", fmt.Sprint(sec))
	s.logf("ursad: shedding load (queue full, retry after %ds)", sec)
	s.writeError(w, http.StatusTooManyRequests,
		fmt.Sprintf("admission queue full (%d compiling, %d queued); retry after %ds",
			s.cfg.MaxConcurrent, s.queued.Load(), sec))
}

// compileOne runs one request through the pipeline: parse, compile,
// optionally execute and verify, and assemble the response.
func (s *Server) compileOne(ctx context.Context, cr *CompileRequest) (*CompileResponse, error) {
	start := time.Now()
	hits0, misses0 := s.cache.Stats()

	f, isPaper, err := cr.load()
	if err != nil {
		return nil, badRequest("parse: %v", err)
	}
	method, err := cr.method()
	if err != nil {
		return nil, badRequest("%v", err)
	}
	m, err := cr.Machine.resolve()
	if err != nil {
		return nil, badRequest("machine: %v", err)
	}

	opts := pipeline.Options{Optimize: cr.Optimize, Workers: cr.Workers, Ctx: ctx}
	opts.Core.Cache = s.cache
	if !cr.Run {
		// Execution needs the in-memory program; cached artifacts hold
		// listings only, so run requests always compile.
		opts.Results = s.artifacts
	}
	var cf *pipeline.CachedFunc
	var st *pipeline.Stats
	var loops []LoopJSON
	if cr.Loop {
		var ms *modsched.Result
		cf, st, ms, err = pipeline.CompileLoopCached(f, m, method, opts)
		if err == nil {
			for _, lr := range ms.Loops {
				loops = append(loops, LoopJSON{
					Head:        lr.HeadLabel,
					ResMII:      lr.ResMII,
					RecMII:      lr.RecMII,
					MII:         lr.MII,
					II:          lr.II,
					Stages:      lr.Stages,
					Unroll:      lr.Unroll,
					KernelWords: lr.KernelWords,
					AchievedII:  lr.AchievedII,
				})
				s.mLoopII.Observe(float64(lr.AchievedII))
				s.mLoopMII.Observe(float64(lr.MII))
			}
		}
	} else {
		cf, st, err = pipeline.CompileFuncCached(f, m, method, opts)
	}
	if err != nil {
		s.mCompileErr.With(method.String()).Inc()
		return nil, fmt.Errorf("compile: %w", err)
	}

	resp := &CompileResponse{
		Name:    cr.Name,
		Method:  method.String(),
		Machine: m.Name,
		Blocks:  artifactListings(cf.Artifact),
		Loops:   loops,
	}

	if cr.Run {
		run, verified, err := s.execute(cr, f, cf.Prog, isPaper)
		if err != nil {
			s.mCompileErr.With(method.String()).Inc()
			return nil, err
		}
		st.Verified = verified
		st.Cycles = run.Cycles
		st.Issued = run.Issued
		if run.Cycles > 0 {
			st.Utilization = float64(run.Issued) / float64(run.Cycles)
		}
		resp.Run = run
	}
	resp.Stats = statsJSON(st)
	if cr.Gap {
		resp.Gap = s.gapReport(ctx, f, m, st)
	}

	hits1, misses1 := s.cache.Stats()
	resp.Cache = CacheDelta{Hits: hits1 - hits0, Misses: misses1 - misses0}
	if s.artifacts != nil {
		resp.Cache.Result = tierLabel(cf.Tier)
		resp.Cache.Key = cf.Key
		resp.Cache.Artifacts = s.artifactStats()
	}
	s.mServedBy.With(tierLabel(cf.Tier)).Inc()
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	s.mCompileOK.With(method.String()).Inc()
	return resp, nil
}

// gapReport runs the exact solver on every block of the function and
// compares the compiled stats against the proven optima: words against
// the summed program-model minima (the same aggregation Stats uses) and
// per-class registers against the maximum block pressure. Solver
// refusals — a block past the node limit, an exhausted search budget, or
// the request deadline — mark the report skipped instead of failing the
// request. Nonnegative gaps feed the ursa_heuristic_gap histogram.
func (s *Server) gapReport(ctx context.Context, f *ir.Func, m *machine.Config, st *pipeline.Stats) *GapJSON {
	words := 0
	var pressure [ir.NumClasses]int
	for i := range f.Blocks {
		g, err := dag.Build(f.Blocks[i])
		if err != nil {
			return &GapJSON{Skipped: fmt.Sprintf("block %s: %v", f.Blocks[i].Label, err)}
		}
		res, err := exact.Solve(g, m, exact.Options{Ctx: ctx})
		if err != nil {
			return &GapJSON{Skipped: fmt.Sprintf("block %s: %v", f.Blocks[i].Label, err)}
		}
		words += res.MinWordsProg
		for c := ir.Class(0); c < ir.NumClasses; c++ {
			if res.MinPressure[c] > pressure[c] {
				pressure[c] = res.MinPressure[c]
			}
		}
	}
	gap := &GapJSON{
		ExactWords:   words,
		ExactIntRegs: pressure[ir.ClassInt],
		ExactFPRegs:  pressure[ir.ClassFP],
		WordsGap:     st.Words - words,
		IntRegsGap:   st.RegsUsed[ir.ClassInt] - pressure[ir.ClassInt],
		FPRegsGap:    st.RegsUsed[ir.ClassFP] - pressure[ir.ClassFP],
	}
	observe := func(dim string, v int) {
		if v < 0 {
			v = 0 // spill code may dip below minimum pressure legitimately
		}
		s.mGap.With(dim).Observe(float64(v))
	}
	observe("words", gap.WordsGap)
	observe("intregs", gap.IntRegsGap)
	observe("fpregs", gap.FPRegsGap)
	return gap
}

// listings renders every compiled block byte-identically to an in-process
// assign.Program.String().
func listings(f *ir.Func, fp *pipeline.FuncProgram) []BlockListing {
	out := make([]BlockListing, len(fp.Blocks))
	for i, prog := range fp.Blocks {
		out[i] = BlockListing{Label: f.Blocks[i].Label, Listing: prog.String()}
	}
	return out
}

// artifactListings renders the compiled blocks byte-identically to an
// in-process assign.Program.String() — artifacts store exactly that, so
// cold, disk-warm, and peer-served responses carry identical bytes.
func artifactListings(a *store.Artifact) []BlockListing {
	out := make([]BlockListing, len(a.Blocks))
	for i, b := range a.Blocks {
		out[i] = BlockListing{Label: b.Label, Listing: b.Listing}
	}
	return out
}

// measureCacheJSON snapshots the measurement cache for /healthz.
func (s *Server) measureCacheJSON() *MeasureCacheJSON {
	hits, misses := s.cache.Stats()
	entries, bytes := s.cache.Entries()
	return &MeasureCacheJSON{
		Entries:   entries,
		Bytes:     bytes,
		Hits:      hits,
		Misses:    misses,
		Evictions: s.cache.Evictions(),
		Coalesced: s.cache.Coalesced(),
	}
}

// execute runs the compiled function on the simulator and verifies its
// memory effects against the sequential interpreter.
func (s *Server) execute(cr *CompileRequest, f *ir.Func, fp *pipeline.FuncProgram, isPaper bool) (*RunJSON, bool, error) {
	init := cr.Init.state()
	if cr.Init == nil && isPaper {
		init = workload.PaperInit()
	}
	maxCycles := cr.MaxCycles
	if maxCycles <= 0 {
		maxCycles = 10_000_000
	}

	ref := init.Clone()
	if _, err := ref.Run(f, maxCycles*8+100_000); err != nil {
		return nil, false, fmt.Errorf("reference interpretation: %w", err)
	}

	var res *pipeline.FuncResult
	var err error
	if cr.InOrder {
		res, err = fp.RunInOrder(init, maxCycles)
	} else {
		res, err = fp.Run(init, maxCycles)
	}
	if err != nil {
		return nil, false, fmt.Errorf("run: %w", err)
	}
	if err := verifyMem(ref, res.State); err != nil {
		return nil, false, fmt.Errorf("verification: %w", err)
	}
	return &RunJSON{
		Cycles:   res.Cycles,
		Issued:   res.Issued,
		SpillOps: res.SpillOps,
		Blocks:   res.BlockXct,
		Mem:      memCells(res.State),
	}, true, nil
}

// verifyMem compares the non-spill memory of the compiled execution
// against the interpreter's (the pipeline packages' verification rule).
func verifyMem(ref, got *ir.State) error {
	isSpill := func(sym string) bool { return len(sym) >= 5 && sym[:5] == "spill" }
	for addr, want := range ref.Mem {
		if isSpill(addr.Sym) {
			continue
		}
		if g := got.Mem[addr]; g != want {
			return fmt.Errorf("mem %s[%d] = %d, want %d", addr.Sym, addr.Off, g.Int(), want.Int())
		}
	}
	for addr, g := range got.Mem {
		if isSpill(addr.Sym) {
			continue
		}
		if want := ref.Mem[addr]; g != want {
			return fmt.Errorf("mem %s[%d] = %d, want %d", addr.Sym, addr.Off, g.Int(), want.Int())
		}
	}
	return nil
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req BatchRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeError(w, errorStatus(err), err.Error())
		return
	}
	if len(req.Jobs) == 0 {
		s.writeError(w, http.StatusBadRequest, "batch has no jobs")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	// One admission slot per batch: the batch's own fan-out runs under
	// the driver's worker bound, so a batch costs one queue token however
	// many jobs it carries.
	release, err := s.admit(ctx)
	if errors.Is(err, errShed) {
		s.shed(w)
		return
	}
	if err != nil {
		s.writeError(w, http.StatusGatewayTimeout, "timed out waiting for a compile slot")
		return
	}
	defer release()
	if s.testHook != nil {
		s.testHook()
	}

	resp, err := s.runBatch(ctx, &req)
	if err != nil {
		s.writeError(w, errorStatus(err), err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// runBatch fans the batch over pipeline.RunJobsAll. Jobs that fail to
// parse or resolve report their error in place without consuming a driver
// slot; the rest compile in parallel, each against the shared cache.
func (s *Server) runBatch(ctx context.Context, br *BatchRequest) (*BatchResponse, error) {
	start := time.Now()
	hits0, misses0 := s.cache.Stats()

	results := make([]BatchResult, len(br.Jobs))
	type prepared struct {
		req    *CompileRequest
		f      *ir.Func
		method pipeline.Method
	}
	var jobs []pipeline.Job
	var backRef []int // job index -> request index
	var preps []prepared

	for i := range br.Jobs {
		cr := &br.Jobs[i]
		f, isPaper, err := cr.load()
		if err != nil {
			results[i] = BatchResult{Error: fmt.Sprintf("parse: %v", err)}
			continue
		}
		method, err := cr.method()
		if err != nil {
			results[i] = BatchResult{Error: err.Error()}
			continue
		}
		m, err := cr.Machine.resolve()
		if err != nil {
			results[i] = BatchResult{Error: fmt.Sprintf("machine: %v", err)}
			continue
		}
		opts := pipeline.Options{Optimize: cr.Optimize, Workers: cr.Workers}
		opts.Core.Cache = s.cache
		if !cr.Run {
			opts.Results = s.artifacts
		}
		job := pipeline.Job{
			Name:    cr.Name,
			Func:    f,
			Machine: m,
			Method:  method,
			Opts:    opts,
		}
		if cr.Run {
			init := cr.Init.state()
			if cr.Init == nil && isPaper {
				init = workload.PaperInit()
			}
			job.Init = init
			job.MaxCycles = cr.MaxCycles
			job.InOrder = cr.InOrder
		}
		jobs = append(jobs, job)
		backRef = append(backRef, i)
		preps = append(preps, prepared{req: cr, f: f, method: method})
	}

	outs, _ := pipeline.RunJobsAll(ctx, jobs, br.Workers)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for j, out := range outs {
		i := backRef[j]
		if out.Err != nil {
			s.mCompileErr.With(preps[j].method.String()).Inc()
			results[i] = BatchResult{Error: out.Err.Error()}
			continue
		}
		s.mCompileOK.With(preps[j].method.String()).Inc()
		resp := &CompileResponse{
			Name:    preps[j].req.Name,
			Method:  preps[j].method.String(),
			Machine: jobs[j].Machine.Name,
			Stats:   statsJSON(out.Stats),
		}
		switch {
		case out.Cached != nil:
			resp.Blocks = artifactListings(out.Cached.Artifact)
			if s.artifacts != nil {
				resp.Cache.Result = tierLabel(out.Cached.Tier)
				resp.Cache.Key = out.Cached.Key
			}
			s.mServedBy.With(tierLabel(out.Cached.Tier)).Inc()
		case out.Prog != nil:
			resp.Blocks = listings(preps[j].f, out.Prog)
		}
		if preps[j].req.Gap {
			resp.Gap = s.gapReport(ctx, preps[j].f, jobs[j].Machine, out.Stats)
		}
		results[i] = BatchResult{CompileResponse: resp}
	}

	nerr := 0
	for i := range results {
		if results[i].Error != "" {
			nerr++
		}
	}
	hits1, misses1 := s.cache.Stats()
	return &BatchResponse{
		Results:   results,
		Errors:    nerr,
		Cache:     CacheDelta{Hits: hits1 - hits0, Misses: misses1 - misses0},
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	}, nil
}
