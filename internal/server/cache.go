package server

import (
	"io"
	"net/http"
	"strings"

	"ursa/internal/store"
)

// maxCacheBody caps one peer-pushed artifact. Larger than the compile
// body cap: an artifact carries emitted listings, not source.
const maxCacheBody = 64 << 20

// handleCache serves the peer cache protocol on /v1/cache/{key}:
//
//	GET  returns the framed artifact (sha256 header + payload) or 404.
//	PUT  verifies the framed body and stores it locally.
//
// Lookups and stores touch only this daemon's memory and disk tiers —
// never its own peer — so two daemons pointed at each other share
// artifacts without forwarding loops.
func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	if s.artifacts == nil {
		s.writeError(w, http.StatusNotFound, "artifact cache disabled (start with -cache-dir or -cache-mem)")
		return
	}
	key := strings.TrimPrefix(r.URL.Path, "/v1/cache/")
	if key == "" || strings.ContainsAny(key, "/.") || len(key) > 128 {
		s.writeError(w, http.StatusBadRequest, "bad cache key")
		return
	}
	switch r.Method {
	case http.MethodGet:
		data, ok := s.artifacts.LocalGet(key)
		if !ok {
			s.writeError(w, http.StatusNotFound, "cache miss")
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(store.Frame(data))
		s.mResponses.With("200").Inc()
	case http.MethodPut:
		raw, err := io.ReadAll(io.LimitReader(r.Body, maxCacheBody+1))
		if err != nil || len(raw) > maxCacheBody {
			s.writeError(w, http.StatusRequestEntityTooLarge, "artifact too large")
			return
		}
		payload, ok := store.Unframe(raw)
		if !ok {
			// The peer's bytes do not match their own hash: a truncated
			// or corrupted transfer. Refuse it; never store bad bytes.
			s.writeError(w, http.StatusBadRequest, "artifact failed integrity check")
			return
		}
		s.artifacts.LocalPut(key, payload)
		w.WriteHeader(http.StatusNoContent)
		s.mResponses.With("204").Inc()
	default:
		s.writeError(w, http.StatusMethodNotAllowed, "use GET or PUT")
	}
}

// tierLabel names the tier that served a compile for responses and the
// per-tier served counter ("compiled" when no cache tier answered).
func tierLabel(t store.Tier) string {
	if t == store.TierNone {
		return "compiled"
	}
	return t.String()
}

// artifactStats snapshots the tiered cache for responses and /healthz,
// nil when the cache is disabled.
func (s *Server) artifactStats() *store.TierStats {
	if s.artifacts == nil {
		return nil
	}
	st := s.artifacts.Stats()
	return &st
}

// registerCacheMetrics exposes every tier's counters. The memory and
// flight series always exist when the cache is on; disk and peer series
// are registered only when those tiers are configured, so a scrape shows
// exactly the deployed topology.
func (s *Server) registerCacheMetrics() {
	r := s.reg
	r.Func("ursa_measure_cache_evictions_total", "measurement cache entries evicted by the byte budget", "counter", func() float64 {
		return float64(s.cache.Evictions())
	})
	r.Func("ursa_measure_cache_coalesced_total", "measurement cache misses coalesced onto a concurrent build", "counter", func() float64 {
		return float64(s.cache.Coalesced())
	})
	if s.artifacts == nil {
		return
	}
	mem := func(f func(store.MemStats) float64) func() float64 {
		return func() float64 { return f(s.artifacts.Stats().Mem) }
	}
	r.Func("ursad_artifact_mem_hits_total", "artifact cache memory-tier hits", "counter",
		mem(func(m store.MemStats) float64 { return float64(m.Hits) }))
	r.Func("ursad_artifact_mem_misses_total", "artifact cache memory-tier misses", "counter",
		mem(func(m store.MemStats) float64 { return float64(m.Misses) }))
	r.Func("ursad_artifact_mem_evictions_total", "artifact cache memory-tier evictions", "counter",
		mem(func(m store.MemStats) float64 { return float64(m.Evictions) }))
	r.Func("ursad_artifact_mem_entries", "artifact cache memory-tier entries", "gauge",
		mem(func(m store.MemStats) float64 { return float64(m.Entries) }))
	r.Func("ursad_artifact_mem_bytes", "artifact cache memory-tier bytes", "gauge",
		mem(func(m store.MemStats) float64 { return float64(m.Bytes) }))
	r.Func("ursad_artifact_computes_total", "compile results computed locally (artifact cache misses)", "counter", func() float64 {
		return float64(s.artifacts.Stats().Computes)
	})
	r.Func("ursad_artifact_coalesced_total", "compiles coalesced onto a concurrent identical compile", "counter", func() float64 {
		return float64(s.artifacts.Stats().Coalesced)
	})
	if s.artifacts.Disk() != nil {
		disk := func(f func(store.StoreStats) float64) func() float64 {
			return func() float64 { return f(s.artifacts.Disk().Stats()) }
		}
		r.Func("ursad_artifact_disk_hits_total", "artifact cache disk-tier hits", "counter",
			disk(func(d store.StoreStats) float64 { return float64(d.Hits) }))
		r.Func("ursad_artifact_disk_misses_total", "artifact cache disk-tier misses", "counter",
			disk(func(d store.StoreStats) float64 { return float64(d.Misses) }))
		r.Func("ursad_artifact_disk_puts_total", "artifact cache disk-tier stores", "counter",
			disk(func(d store.StoreStats) float64 { return float64(d.Puts) }))
		r.Func("ursad_artifact_disk_evictions_total", "artifact cache disk-tier evictions under the byte budget", "counter",
			disk(func(d store.StoreStats) float64 { return float64(d.Evictions) }))
		r.Func("ursad_artifact_disk_corruptions_total", "artifacts that failed sha256 verification on read", "counter",
			disk(func(d store.StoreStats) float64 { return float64(d.Corruptions) }))
		r.Func("ursad_artifact_disk_write_errors_total", "artifact writes that failed (disk full, permissions)", "counter",
			disk(func(d store.StoreStats) float64 { return float64(d.WriteErrors) }))
		r.Func("ursad_artifact_disk_entries", "artifacts on disk", "gauge",
			disk(func(d store.StoreStats) float64 { return float64(d.Entries) }))
		r.Func("ursad_artifact_disk_bytes", "artifact bytes on disk", "gauge",
			disk(func(d store.StoreStats) float64 { return float64(d.Bytes) }))
	}
	if ps := s.artifacts.Stats().Peer; ps != nil {
		peer := func(f func(store.PeerStats) float64) func() float64 {
			return func() float64 {
				if p := s.artifacts.Stats().Peer; p != nil {
					return f(*p)
				}
				return 0
			}
		}
		r.Func("ursad_artifact_peer_gets_total", "peer cache lookups issued", "counter",
			peer(func(p store.PeerStats) float64 { return float64(p.Gets) }))
		r.Func("ursad_artifact_peer_hits_total", "peer cache lookups that hit", "counter",
			peer(func(p store.PeerStats) float64 { return float64(p.Hits) }))
		r.Func("ursad_artifact_peer_puts_total", "artifacts pushed to the peer", "counter",
			peer(func(p store.PeerStats) float64 { return float64(p.Puts) }))
		r.Func("ursad_artifact_peer_errors_total", "peer round-trips that failed (timeout, refused, bad body)", "counter",
			peer(func(p store.PeerStats) float64 { return float64(p.Errors) }))
	}
}
