package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ursa/internal/machine"
	"ursa/internal/pipeline"
	"ursa/internal/target"
	"ursa/internal/workload"
)

// newTestServer starts an httptest server over a fresh Server.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postJSON posts v and decodes the response body into out (if non-nil),
// returning the status code and raw body.
func postJSON(t *testing.T, url string, v any, out any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("unmarshal %s: %v\n%s", url, err, raw)
		}
	}
	return resp.StatusCode, raw
}

func getJSON(t *testing.T, url string, out any) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("unmarshal %s: %v\n%s", url, err, raw)
		}
	}
	return resp.StatusCode, raw
}

// TestCompilePaperByteIdentical: the acceptance criterion — POST
// /v1/compile of the Figure 2 workload returns listings byte-identical to
// pipeline.Compile run in-process, for every pipeline method.
func TestCompilePaperByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	f := workload.PaperExample(true)
	m := machine.VLIW(4, 8) // the server's default machine

	for _, method := range pipeline.Methods {
		var got CompileResponse
		code, raw := postJSON(t, ts.URL+"/v1/compile",
			CompileRequest{Method: method.String()}, &got)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", method, code, raw)
		}

		fp, st, err := pipeline.CompileFunc(f, m, method, pipeline.Options{})
		if err != nil {
			t.Fatalf("%s: in-process compile: %v", method, err)
		}
		if len(got.Blocks) != len(fp.Blocks) {
			t.Fatalf("%s: %d blocks over HTTP, %d in-process", method, len(got.Blocks), len(fp.Blocks))
		}
		for i := range fp.Blocks {
			if got.Blocks[i].Listing != fp.Blocks[i].String() {
				t.Errorf("%s: block %d listing differs over HTTP:\n--- http\n%s--- in-process\n%s",
					method, i, got.Blocks[i].Listing, fp.Blocks[i].String())
			}
		}
		if got.Stats.Words != st.Words || got.Stats.SpillOps != st.SpillOps {
			t.Errorf("%s: stats differ: http %+v vs in-process words=%d spills=%d",
				method, got.Stats, st.Words, st.SpillOps)
		}
		if got.Machine != m.Name || got.Method != method.String() {
			t.Errorf("%s: labels: %q on %q", method, got.Method, got.Machine)
		}
	}
}

// TestCompileRunVerifies: run:true executes on the simulator, verifies
// against the interpreter, and reports the paper example's memory effect.
func TestCompileRunVerifies(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var got CompileResponse
	code, raw := postJSON(t, ts.URL+"/v1/compile", CompileRequest{Run: true}, &got)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if !got.Stats.Verified {
		t.Error("run was not verified")
	}
	if got.Run == nil || got.Run.Cycles == 0 {
		t.Fatalf("missing run stats: %+v", got.Run)
	}
	if len(got.Run.Mem) == 0 {
		t.Error("run reported no memory cells")
	}
}

// TestCompileKernelSource: the kernel-language front end is reachable over
// HTTP with unrolling, running against a seeded init state.
func TestCompileKernelSource(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	k := workload.KernelByName("dot")
	if k == nil {
		t.Fatal("kernel dot not found")
	}
	var got CompileResponse
	code, raw := postJSON(t, ts.URL+"/v1/compile", CompileRequest{
		Source:  k.Source,
		Lang:    "kernel",
		Unroll:  2,
		Machine: MachineSpec{Preset: "vliw4x8"},
	}, &got)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if len(got.Blocks) == 0 || got.Stats.Words == 0 {
		t.Errorf("empty compile result: %+v", got.Stats)
	}
}

// TestBatchDeterminism: a mixed batch returns byte-identical results at
// every worker count.
func TestBatchDeterminism(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	k := workload.KernelByName("saxpy")
	req := BatchRequest{Jobs: []CompileRequest{
		{Name: "paper-ursa", Method: "ursa", Machine: MachineSpec{Preset: "paper2x3"}},
		{Name: "paper-prepass", Method: "prepass", Machine: MachineSpec{Preset: "paper2x3"}},
		{Name: "paper-postpass", Method: "postpass"},
		{Name: "saxpy", Source: k.Source, Lang: "kernel", Unroll: 2, Machine: MachineSpec{Width: 4, Regs: 8}},
		{Name: "run-job", Run: true},
		{Name: "bad", Method: "no-such-method"},
	}}

	var ref []byte
	for _, workers := range []int{1, 2, 8} {
		req.Workers = workers
		var got BatchResponse
		code, raw := postJSON(t, ts.URL+"/v1/batch", req, &got)
		if code != http.StatusOK {
			t.Fatalf("workers=%d: status %d: %s", workers, code, raw)
		}
		if got.Errors != 1 {
			t.Fatalf("workers=%d: %d errors, want 1 (the bad job)", workers, got.Errors)
		}
		// Results must be identical across worker counts; timing and cache
		// deltas legitimately vary, so compare the results array only.
		res, err := json.Marshal(got.Results)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
		} else if !bytes.Equal(ref, res) {
			t.Errorf("workers=%d: results differ from workers=1:\n%s\nvs\n%s", workers, res, ref)
		}
	}
}

// TestShedWith429: with a full admission queue the server sheds load with
// 429 + Retry-After, and /metrics reports the shed and nonzero cache
// counters — the saturation half of the acceptance criterion.
func TestShedWith429(t *testing.T) {
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 1})
	s.testHook = func() {
		entered <- struct{}{}
		<-release
	}

	// Request 1 occupies the single compile slot.
	done := make(chan int, 2)
	go func() {
		code, _ := postJSON(t, ts.URL+"/v1/compile", CompileRequest{}, nil)
		done <- code
	}()
	<-entered

	// Request 2 fills the queue (depth 1).
	go func() {
		code, _ := postJSON(t, ts.URL+"/v1/compile", CompileRequest{}, nil)
		done <- code
	}()
	waitFor(t, func() bool { return s.queued.Load() == 1 })

	// Request 3 must shed: queue is full.
	resp, err := http.Post(ts.URL+"/v1/compile", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, raw)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}

	// Drain: both queued requests complete successfully.
	close(release)
	for i := 0; i < 2; i++ {
		if code := <-done; code != http.StatusOK {
			t.Errorf("queued request finished with %d", code)
		}
	}

	// Warm the cache so the hit counter is nonzero, then scrape.
	postJSON(t, ts.URL+"/v1/compile", CompileRequest{}, nil)
	_, raw = getJSON(t, ts.URL+"/metrics", nil)
	text := string(raw)
	for _, want := range []string{"ursad_shed_total 1", "ursad_requests_total", "ursad_request_seconds_count"} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "ursad_cache_hits_total 0\n") {
		t.Errorf("/metrics cache hits still zero after a repeated compile:\n%s", text)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestGracefulDrain: cancelling Serve's context finishes the in-flight
// request (200) before Serve returns cleanly.
func TestGracefulDrain(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	s := New(Config{MaxConcurrent: 1, DrainTimeout: 10 * time.Second})
	s.testHook = func() {
		close(entered)
		<-release
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()

	url := "http://" + ln.Addr().String()
	done := make(chan int, 1)
	go func() {
		code, _ := postJSON(t, url+"/v1/compile", CompileRequest{}, nil)
		done <- code
	}()
	<-entered

	cancel() // SIGTERM equivalent: stop accepting, drain in-flight
	time.Sleep(20 * time.Millisecond)
	close(release)

	if code := <-done; code != http.StatusOK {
		t.Errorf("in-flight request finished with %d during drain, want 200", code)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Errorf("Serve returned %v after drain, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
	if !s.draining.Load() {
		t.Error("server not marked draining")
	}
}

// TestConcurrentClients hammers every endpoint from concurrent clients —
// meaningful mainly under -race, where it checks the serving path, the
// shared cache, and the metrics registry together.
func TestConcurrentClients(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 4, QueueDepth: 256})
	k := workload.KernelByName("fir8")
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				switch c % 4 {
				case 0:
					code, raw := postJSON(t, ts.URL+"/v1/compile",
						CompileRequest{Method: pipeline.Methods[i%len(pipeline.Methods)].String()}, nil)
					if code != http.StatusOK {
						errc <- fmt.Errorf("compile: %d: %s", code, raw)
					}
				case 1:
					code, raw := postJSON(t, ts.URL+"/v1/batch", BatchRequest{Jobs: []CompileRequest{
						{Method: "ursa"}, {Source: k.Source, Lang: "kernel"},
					}}, nil)
					if code != http.StatusOK {
						errc <- fmt.Errorf("batch: %d: %s", code, raw)
					}
				case 2:
					if code, raw := getJSON(t, ts.URL+"/metrics", nil); code != http.StatusOK {
						errc <- fmt.Errorf("metrics: %d: %s", code, raw)
					}
				case 3:
					if code, raw := getJSON(t, ts.URL+"/v1/machines", nil); code != http.StatusOK {
						errc <- fmt.Errorf("machines: %d: %s", code, raw)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestCacheDeltaAndSharedCache: a repeated identical compile reports cache
// hits in its per-request delta, and the process-wide counters grow
// monotonically.
func TestCacheDeltaAndSharedCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var first, second CompileResponse
	postJSON(t, ts.URL+"/v1/compile", CompileRequest{}, &first)
	postJSON(t, ts.URL+"/v1/compile", CompileRequest{}, &second)
	if first.Cache.Misses == 0 {
		t.Errorf("first compile reported no cache misses: %+v", first.Cache)
	}
	if second.Cache.Hits == 0 {
		t.Errorf("second identical compile reported no cache hits: %+v", second.Cache)
	}
	if n, b := s.Cache().Entries(); n == 0 || b == 0 {
		t.Errorf("shared cache empty after compiles: entries=%d bytes=%d", n, b)
	}
}

// TestMachinesAndHealth: the discovery endpoints.
func TestMachinesAndHealth(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var ms []MachineJSON
	code, _ := getJSON(t, ts.URL+"/v1/machines", &ms)
	if code != http.StatusOK || len(ms) != len(target.Presets()) {
		t.Fatalf("machines: code=%d n=%d want %d", code, len(ms), len(target.Presets()))
	}
	if ms[0].Name != "paper2x3" || !ms[0].Homogeneous || ms[0].Units != 2 || ms[0].IntRegs != 3 {
		t.Errorf("paper2x3 rendered wrong: %+v", ms[0])
	}
	byName := map[string]MachineJSON{}
	for _, m := range ms {
		byName[m.Name] = m
	}
	if m := byName["clus2x2x4"]; m.Family != string(target.FamilyClustered) || m.Clusters != 2 || m.Units != 5 {
		t.Errorf("clus2x2x4 rendered wrong: %+v", m) // 2×2 ALUs + 1 xfer bus
	}
	if m := byName["edp2x6b1"]; m.Family != string(target.FamilyEDP) || m.BufferDepth != 1 {
		t.Errorf("edp2x6b1 rendered wrong: %+v", m)
	}
	if m := byName["suprax12"]; m.Family != string(target.FamilySuperscalar) || m.IssueWidth != 12 {
		t.Errorf("suprax12 rendered wrong: %+v", m)
	}
	var h HealthJSON
	code, _ = getJSON(t, ts.URL+"/healthz", &h)
	if code != http.StatusOK || h.Status != "ok" || h.Draining {
		t.Errorf("healthz: code=%d %+v", code, h)
	}
}

// TestBadRequests: malformed inputs map to 4xx, not 500.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 512})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"bad json", "{", http.StatusBadRequest},
		{"unknown field", `{"sourcee": "x"}`, http.StatusBadRequest},
		{"bad method", `{"method": "llvm"}`, http.StatusBadRequest},
		{"bad lang", `{"lang": "cobol"}`, http.StatusBadRequest},
		{"bad preset", `{"machine": {"preset": "cray"}}`, http.StatusBadRequest},
		{"bad latency", `{"machine": {"latency": "quantum"}}`, http.StatusBadRequest},
		{"bad source", `{"source": "this is not ir"}`, http.StatusBadRequest},
		{"too big", `{"source": "` + strings.Repeat("x", 600) + `"}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/compile", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d: %s", tc.name, resp.StatusCode, tc.want, raw)
		}
	}
	// Wrong HTTP method.
	if code, _ := getJSON(t, ts.URL+"/v1/compile", nil); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/compile: %d, want 405", code)
	}
}

// TestCompileUnfitMachine: a program that cannot compile (too few
// registers for a live value set even after spilling heuristics give up)
// reports 422, counts a compile error, and leaves the server serving.
func TestCompileUnfitMachine(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Width 1, 1 register: the paper example needs at least 2 live values.
	code, raw := postJSON(t, ts.URL+"/v1/compile",
		CompileRequest{Machine: MachineSpec{Width: 1, Regs: 1}}, nil)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", code, raw)
	}
	// Server still healthy.
	if c, _ := getJSON(t, ts.URL+"/healthz", nil); c != http.StatusOK {
		t.Errorf("healthz after compile error: %d", c)
	}
}

// TestPprofGated: the profiling endpoints exist only when Config opts in,
// and compiling bumps the process-wide candidate-evaluation counter on
// /metrics.
func TestPprofGated(t *testing.T) {
	_, off := newTestServer(t, Config{})
	if code, _ := getJSON(t, off.URL+"/debug/pprof/", nil); code != http.StatusNotFound {
		t.Errorf("pprof disabled: GET /debug/pprof/ = %d, want 404", code)
	}

	_, on := newTestServer(t, Config{EnablePprof: true})
	if code, _ := getJSON(t, on.URL+"/debug/pprof/", nil); code != http.StatusOK {
		t.Errorf("pprof enabled: GET /debug/pprof/ = %d, want 200", code)
	}
	if code, _ := getJSON(t, on.URL+"/debug/pprof/symbol", nil); code != http.StatusOK {
		t.Errorf("pprof enabled: GET /debug/pprof/symbol = %d, want 200", code)
	}

	// The paper machine is tight enough to force reduction candidates; the
	// default preset fits Figure 2 untransformed and would evaluate none.
	req := CompileRequest{Machine: MachineSpec{Preset: "paper2x3"}}
	if code, raw := postJSON(t, on.URL+"/v1/compile", req, nil); code != http.StatusOK {
		t.Fatalf("compile: %d: %s", code, raw)
	}
	_, raw := getJSON(t, on.URL+"/metrics", nil)
	var sample string
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, "ursa_candidate_evals_total") {
			sample = line
			break
		}
	}
	if sample == "" {
		t.Fatalf("/metrics missing an ursa_candidate_evals_total sample:\n%s", raw)
	}
	if strings.HasSuffix(sample, " 0") {
		t.Errorf("candidate evals still zero after a pressured compile: %q", sample)
	}
}
