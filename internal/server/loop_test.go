package server

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

const loopTestSrc = `
func acc {
	var s = 0;
	for i = 0 to 24 { s = s + a[i]*2; b[i] = a[i] + s; }
	out[0] = s;
}`

func loopTestInit() *InitSpec {
	init := &InitSpec{Ints: map[string][]int64{"a": {}}}
	for i := int64(0); i < 24; i++ {
		init.Ints["a"] = append(init.Ints["a"], 3*i-7)
	}
	return init
}

// TestCompileLoop: a loop-pipelined compile returns per-loop II reports
// with II ≥ MII, a runnable verified execution against the unpipelined
// reference, and the loop telemetry series.
func TestCompileLoop(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var got CompileResponse
	code, raw := postJSON(t, ts.URL+"/v1/compile", CompileRequest{
		Source:  loopTestSrc,
		Lang:    "kernel",
		Loop:    true,
		Run:     true,
		Machine: MachineSpec{Width: 4, Regs: 12},
		Init:    loopTestInit(),
	}, &got)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if len(got.Loops) == 0 {
		t.Fatal("no loop reports on a loop compile")
	}
	for _, l := range got.Loops {
		if l.AchievedII < l.MII || l.MII < 1 {
			t.Errorf("loop %s: achieved II %d vs MII %d", l.Head, l.AchievedII, l.MII)
		}
		if l.Unroll < 1 || l.KernelWords < 1 {
			t.Errorf("loop %s: degenerate report %+v", l.Head, l)
		}
	}
	if got.Run == nil || !got.Stats.Verified {
		t.Fatalf("loop run missing or unverified: %+v", got.Stats)
	}

	// Telemetry: both loop histograms observed this compile.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, series := range []string{"ursa_loop_ii_count 1", "ursa_loop_mii_count 1"} {
		if !strings.Contains(text, series) {
			t.Errorf("metrics missing %q", series)
		}
	}
}

// TestCompileLoopCacheKeyRouting: the loop request's CacheKey() differs
// from the straight compile's — the property ursagw's shard routing
// relies on to keep the two artifact families apart.
func TestCompileLoopCacheKeyRouting(t *testing.T) {
	loopReq := CompileRequest{Source: loopTestSrc, Lang: "kernel", Loop: true, Machine: MachineSpec{Width: 4, Regs: 12}}
	straight := loopReq
	straight.Loop = false
	lk, err := loopReq.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	sk, err := straight.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if lk == sk {
		t.Fatal("loop and straight requests share a routing key")
	}
}
