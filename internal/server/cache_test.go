package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"ursa/internal/store"
)

// newCachedServer starts a server with the artifact cache on (memory +
// disk under a test temp dir) and an optional peer.
func newCachedServer(t *testing.T, peer *store.PeerClient) (*Server, string) {
	t.Helper()
	disk, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	s, ts := newTestServer(t, Config{Artifacts: store.NewTiered(0, disk, peer)})
	return s, ts.URL
}

// TestCompileCacheTiers: the same request compiled twice reports
// "compiled" then "memory", with byte-identical listings and stats.
func TestCompileCacheTiers(t *testing.T) {
	_, url := newCachedServer(t, nil)
	req := CompileRequest{Method: "ursa"}

	var cold CompileResponse
	if code, raw := postJSON(t, url+"/v1/compile", req, &cold); code != http.StatusOK {
		t.Fatalf("cold compile: %d\n%s", code, raw)
	}
	if cold.Cache.Result != "compiled" {
		t.Fatalf("cold served by %q; want compiled", cold.Cache.Result)
	}
	if cold.Cache.Artifacts == nil || cold.Cache.Artifacts.Computes != 1 {
		t.Fatalf("cold artifact stats = %+v; want 1 compute", cold.Cache.Artifacts)
	}

	var warm CompileResponse
	if code, raw := postJSON(t, url+"/v1/compile", req, &warm); code != http.StatusOK {
		t.Fatalf("warm compile: %d\n%s", code, raw)
	}
	if warm.Cache.Result != "memory" {
		t.Fatalf("warm served by %q; want memory", warm.Cache.Result)
	}
	coldBlocks, _ := json.Marshal(cold.Blocks)
	warmBlocks, _ := json.Marshal(warm.Blocks)
	if !bytes.Equal(coldBlocks, warmBlocks) {
		t.Errorf("warm listings differ:\ncold %s\nwarm %s", coldBlocks, warmBlocks)
	}
	if cold.Stats != warm.Stats {
		t.Errorf("warm stats %+v != cold stats %+v", warm.Stats, cold.Stats)
	}
}

// TestTwoDaemonPeerServedHit is the fleet scenario: daemon A compiles,
// daemon B (cold, pointed at A via the peer protocol) serves the same
// request from A's cache, byte-identically, without compiling.
func TestTwoDaemonPeerServedHit(t *testing.T) {
	_, urlA := newCachedServer(t, nil)
	peer, err := store.NewPeer(urlA, 0)
	if err != nil {
		t.Fatalf("NewPeer: %v", err)
	}
	_, urlB := newCachedServer(t, peer)

	req := CompileRequest{Method: "ursa", Machine: MachineSpec{Preset: "paper2x3"}}
	var fromA CompileResponse
	if code, raw := postJSON(t, urlA+"/v1/compile", req, &fromA); code != http.StatusOK {
		t.Fatalf("compile on A: %d\n%s", code, raw)
	}
	var fromB CompileResponse
	if code, raw := postJSON(t, urlB+"/v1/compile", req, &fromB); code != http.StatusOK {
		t.Fatalf("compile on B: %d\n%s", code, raw)
	}
	if fromB.Cache.Result != "peer" {
		t.Fatalf("B served by %q; want peer", fromB.Cache.Result)
	}
	aBlocks, _ := json.Marshal(fromA.Blocks)
	bBlocks, _ := json.Marshal(fromB.Blocks)
	if !bytes.Equal(aBlocks, bBlocks) {
		t.Errorf("peer-served listings differ:\nA %s\nB %s", aBlocks, bBlocks)
	}
	if fromA.Stats != fromB.Stats {
		t.Errorf("peer-served stats %+v != origin stats %+v", fromB.Stats, fromA.Stats)
	}
	if ps := fromB.Cache.Artifacts.Peer; ps == nil || ps.Hits != 1 {
		t.Fatalf("B's peer stats = %+v; want 1 hit", ps)
	}
	// B refilled its local tiers: the same request again is a local hit,
	// even though the artifact was never compiled on B.
	var again CompileResponse
	postJSON(t, urlB+"/v1/compile", req, &again)
	if again.Cache.Result != "memory" {
		t.Fatalf("B's second compile served by %q; want memory", again.Cache.Result)
	}
	if again.Cache.Artifacts.Computes != 0 {
		t.Fatalf("B compiled %d times; want 0", again.Cache.Artifacts.Computes)
	}
}

// TestCacheEndpointRoundTrip drives GET/PUT /v1/cache/{key} directly —
// the wire protocol a peer daemon speaks.
func TestCacheEndpointRoundTrip(t *testing.T) {
	_, url := newCachedServer(t, nil)
	key := "deadbeef-cafe-0123456789"
	payload := []byte(`{"schema":1,"fake":"artifact"}`)

	// Miss before the PUT.
	resp, err := http.Get(url + "/v1/cache/" + key)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET before PUT = %d; want 404", resp.StatusCode)
	}

	put, err := http.NewRequest(http.MethodPut, url+"/v1/cache/"+key, bytes.NewReader(store.Frame(payload)))
	if err != nil {
		t.Fatalf("build PUT: %v", err)
	}
	resp, err = http.DefaultClient.Do(put)
	if err != nil {
		t.Fatalf("PUT: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT = %d; want 204", resp.StatusCode)
	}

	resp, err = http.Get(url + "/v1/cache/" + key)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET after PUT = %d; want 200", resp.StatusCode)
	}
	got, ok := store.Unframe(raw)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("served frame does not verify or differs: %q, %v", got, ok)
	}
}

func TestCacheEndpointRejections(t *testing.T) {
	_, url := newCachedServer(t, nil)

	// A framed body whose hash does not match must be refused.
	frame := store.Frame([]byte("tampered artifact"))
	frame[len(frame)-1] ^= 1
	put, _ := http.NewRequest(http.MethodPut, url+"/v1/cache/deadbeef-bad", bytes.NewReader(frame))
	resp, err := http.DefaultClient.Do(put)
	if err != nil {
		t.Fatalf("PUT: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt PUT = %d; want 400", resp.StatusCode)
	}

	// Path-traversal-shaped and malformed keys are rejected outright.
	for _, bad := range []string{"..%2F..%2Fetc", "a.b", "x"} {
		resp, err := http.Get(url + "/v1/cache/" + bad)
		if err != nil {
			t.Fatalf("GET %q: %v", bad, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET of bad key %q = %d; want 400/404", bad, resp.StatusCode)
		}
	}

	// Without the cache configured, the protocol answers 404.
	_, plain := newTestServer(t, Config{})
	resp, err = http.Get(plain.URL + "/v1/cache/deadbeef-00")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cache-disabled GET = %d; want 404", resp.StatusCode)
	}
}

// TestHealthzReportsCaches: /healthz carries both cache snapshots when
// the artifact cache is on, and omits the artifact block when off.
func TestHealthzReportsCaches(t *testing.T) {
	_, url := newCachedServer(t, nil)
	postJSON(t, url+"/v1/compile", CompileRequest{}, nil)
	postJSON(t, url+"/v1/compile", CompileRequest{}, nil)

	var h HealthJSON
	if code, raw := getJSON(t, url+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz: %d\n%s", code, raw)
	}
	if h.MeasureCache == nil {
		t.Fatal("healthz missing measure_cache")
	}
	if h.ArtifactCache == nil {
		t.Fatal("healthz missing artifact_cache")
	}
	if h.ArtifactCache.Computes != 1 || h.ArtifactCache.Mem.Hits != 1 {
		t.Fatalf("artifact_cache = %+v; want 1 compute, 1 memory hit", h.ArtifactCache)
	}
	if h.ArtifactCache.Disk == nil || h.ArtifactCache.Disk.Entries != 1 {
		t.Fatalf("disk tier = %+v; want 1 entry", h.ArtifactCache.Disk)
	}

	_, plain := newTestServer(t, Config{})
	var h2 HealthJSON
	getJSON(t, plain.URL+"/healthz", &h2)
	if h2.ArtifactCache != nil {
		t.Fatal("cache-disabled healthz reports artifact_cache")
	}
}

// TestCacheMetricsExposed: the per-tier Prometheus series appear once the
// cache is configured.
func TestCacheMetricsExposed(t *testing.T) {
	_, url := newCachedServer(t, nil)
	postJSON(t, url+"/v1/compile", CompileRequest{}, nil)
	postJSON(t, url+"/v1/compile", CompileRequest{}, nil)

	_, raw := getJSON(t, url+"/metrics", nil)
	for _, series := range []string{
		"ursad_artifact_mem_hits_total 1",
		"ursad_artifact_computes_total 1",
		"ursad_artifact_disk_entries 1",
		"ursa_measure_cache_evictions_total",
		`ursad_artifact_served_total{tier="memory"} 1`,
		`ursad_artifact_served_total{tier="compiled"} 1`,
	} {
		if !bytes.Contains(raw, []byte(series)) {
			t.Errorf("metrics missing %q", series)
		}
	}
}

// TestRunRequestBypassesArtifactCache: a request that executes code needs
// the in-memory program, so it must compile even when the cache is warm.
func TestRunRequestBypassesArtifactCache(t *testing.T) {
	_, url := newCachedServer(t, nil)
	postJSON(t, url+"/v1/compile", CompileRequest{}, nil) // warm the key

	var run CompileResponse
	if code, raw := postJSON(t, url+"/v1/compile", CompileRequest{Run: true}, &run); code != http.StatusOK {
		t.Fatalf("run compile: %d\n%s", code, raw)
	}
	if run.Run == nil || !run.Stats.Verified {
		t.Fatal("run request did not execute")
	}
	if run.Cache.Result != "compiled" {
		t.Fatalf("run request served by %q; want compiled", run.Cache.Result)
	}
}

// TestBatchReportsCacheTiers: batch jobs thread through the artifact
// cache too — identical jobs in one batch coalesce or hit.
func TestBatchReportsCacheTiers(t *testing.T) {
	_, url := newCachedServer(t, nil)
	req := BatchRequest{Jobs: []CompileRequest{{Name: "a"}, {Name: "b"}, {Name: "c"}}}
	var br BatchResponse
	if code, raw := postJSON(t, url+"/v1/batch", req, &br); code != http.StatusOK {
		t.Fatalf("batch: %d\n%s", code, raw)
	}
	if br.Errors != 0 || len(br.Results) != 3 {
		t.Fatalf("batch = %d errors, %d results", br.Errors, len(br.Results))
	}
	compiles := 0
	for _, r := range br.Results {
		if r.Error != "" {
			t.Fatalf("job %s: %s", r.Name, r.Error)
		}
		if r.Cache.Result == "compiled" {
			compiles++
		}
	}
	if compiles != 1 {
		t.Fatalf("%d jobs compiled; want exactly 1 (others cached or coalesced)", compiles)
	}
	first, _ := json.Marshal(br.Results[0].Blocks)
	for _, r := range br.Results[1:] {
		blocks, _ := json.Marshal(r.Blocks)
		if !bytes.Equal(first, blocks) {
			t.Error("cache-served batch job's listings differ from the compiled job's")
		}
	}
}
