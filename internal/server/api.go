package server

import (
	"fmt"
	"sort"

	"ursa/internal/frontend"
	"ursa/internal/ir"
	"ursa/internal/machine"
	"ursa/internal/pipeline"
	"ursa/internal/store"
	"ursa/internal/workload"
)

// MachineSpec selects a target machine: a named preset, a full inline
// machine.Spec (the portable form covering every target family), a
// homogeneous width×regs pair, or an explicit heterogeneous
// configuration. An empty spec means the default preset (vliw4x8).
// Latency is "unit" (default) or "realistic" (multi-cycle loads,
// multiplies, FP); with an inline Spec the latency model belongs in the
// spec itself.
type MachineSpec struct {
	Preset string `json:"preset,omitempty"`
	// Spec is the full inline machine description; when present it wins
	// over every other selector.
	Spec *machine.Spec `json:"spec,omitempty"`
	// Homogeneous: functional units and registers per file.
	Width int `json:"width,omitempty"`
	Regs  int `json:"regs,omitempty"`
	// Heterogeneous: per-class unit counts and per-class register files.
	// Used when any unit count is nonzero and Width is zero.
	IALU    int `json:"ialu,omitempty"`
	FALU    int `json:"falu,omitempty"`
	Mem     int `json:"mem,omitempty"`
	Branch  int `json:"branch,omitempty"`
	IntRegs int `json:"int_regs,omitempty"`
	FPRegs  int `json:"fp_regs,omitempty"`

	Latency string `json:"latency,omitempty"`
}

// resolve returns the machine the spec names. The returned config is
// always a private copy, so latency overrides never mutate a preset.
func (ms *MachineSpec) resolve() (*machine.Config, error) {
	var m *machine.Config
	switch {
	case ms.Spec != nil:
		if ms.Latency != "" {
			return nil, fmt.Errorf("latency belongs inside an inline machine spec")
		}
		return ms.Spec.Config()
	case ms.Preset != "":
		p := presetByName(ms.Preset)
		if p == nil {
			return nil, fmt.Errorf("unknown machine preset %q (see GET /v1/machines)", ms.Preset)
		}
		cp := *p.Config
		m = &cp
	case ms.Width > 0:
		regs := ms.Regs
		if regs <= 0 {
			regs = 8
		}
		m = machine.VLIW(ms.Width, regs)
	case ms.IALU > 0 || ms.FALU > 0 || ms.Mem > 0 || ms.Branch > 0:
		m = machine.Heterogeneous(ms.IALU, ms.FALU, ms.Mem, ms.Branch, ms.IntRegs, ms.FPRegs)
	default:
		m = machine.VLIW(4, 8)
	}
	switch ms.Latency {
	case "", "unit":
	case "realistic":
		m.Latency = machine.RealisticLatency
	default:
		return nil, fmt.Errorf("unknown latency model %q (want \"unit\" or \"realistic\")", ms.Latency)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// InitSpec seeds the initial machine state for execution: memory cells per
// symbol (kernel-language scalars live at "$name"[0]). When absent and the
// request compiles the built-in paper example, the paper's canonical input
// is used.
type InitSpec struct {
	Ints   map[string][]int64   `json:"ints,omitempty"`
	Floats map[string][]float64 `json:"floats,omitempty"`
}

func (is *InitSpec) state() *ir.State {
	st := ir.NewState()
	if is == nil {
		return st
	}
	for sym, vals := range is.Ints {
		for off, v := range vals {
			st.StoreInt(sym, int64(off), v)
		}
	}
	for sym, vals := range is.Floats {
		for off, v := range vals {
			st.StoreFloat(sym, int64(off), v)
		}
	}
	return st
}

// CompileRequest asks for one function compiled with one pipeline on one
// machine — the body of POST /v1/compile and the element of a batch.
type CompileRequest struct {
	// Name labels the job in results and errors. Optional.
	Name string `json:"name,omitempty"`
	// Source is the program text. Empty means the paper's Figure 2
	// example (the same default as the ursac CLI).
	Source string `json:"source,omitempty"`
	// Lang is "ir" (three-address code, default) or "kernel".
	Lang string `json:"lang,omitempty"`
	// Unroll is the kernel-language loop unroll factor.
	Unroll int `json:"unroll,omitempty"`

	Machine MachineSpec `json:"machine,omitempty"`
	// Method is the pipeline: ursa (default), prepass, postpass,
	// integrated-list, or exact (the node-count-guarded optimal lane).
	Method string `json:"method,omitempty"`
	// Gap additionally runs the exact solver on every block and reports
	// how far the chosen method landed from the proven optima (see
	// GapJSON). Blocks beyond the solver's limits mark the report skipped
	// rather than failing the request.
	Gap bool `json:"gap,omitempty"`
	// Optimize runs the scalar optimizations before compiling.
	Optimize bool `json:"optimize,omitempty"`
	// Loop software-pipelines every canonical counted loop with
	// internal/modsched before compiling (kernel-language sources with
	// counted loops; see docs/LOOPS.md). The response carries a LoopJSON
	// per pipelined loop, and Run verifies the pipelined code against the
	// interpretation of the original, unpipelined function.
	Loop bool `json:"loop,omitempty"`
	// Workers bounds per-request block-level parallelism; 0 means
	// sequential (the server's concurrency lives in the admission queue).
	Workers int `json:"workers,omitempty"`

	// Run executes the compiled code on the VLIW simulator and verifies
	// its memory effects against the sequential interpreter.
	Run bool `json:"run,omitempty"`
	// InOrder executes on the in-order superscalar model instead.
	InOrder bool `json:"in_order,omitempty"`
	// MaxCycles bounds execution; 0 means 10M cycles.
	MaxCycles int `json:"max_cycles,omitempty"`
	// Init seeds the initial state for Run.
	Init *InitSpec `json:"init,omitempty"`
}

// load parses the request's source into a function.
func (cr *CompileRequest) load() (*ir.Func, bool, error) {
	switch cr.Lang {
	case "", "ir", "kernel":
	default:
		return nil, false, fmt.Errorf("unknown lang %q (want \"ir\" or \"kernel\")", cr.Lang)
	}
	if cr.Source == "" {
		return workload.PaperExample(true), true, nil
	}
	switch cr.Lang {
	case "kernel":
		u, err := frontend.Compile(cr.Source, frontend.Options{Unroll: cr.Unroll})
		if err != nil {
			return nil, false, err
		}
		return u.Func, false, nil
	default:
		f, err := ir.Parse(cr.Source)
		return f, false, err
	}
}

// CacheKey derives the canonical compile-result cache key this request
// resolves to — the same pipeline.CacheKey the daemon computes before
// compiling, so a router in front of a fleet can place the request on
// the shard that owns (or will own) the artifact. Fails on exactly the
// inputs the daemon would reject with 400 (bad source, unknown method
// or machine).
func (cr *CompileRequest) CacheKey() (string, error) {
	f, _, err := cr.load()
	if err != nil {
		return "", fmt.Errorf("parse: %w", err)
	}
	method, err := cr.method()
	if err != nil {
		return "", err
	}
	m, err := cr.Machine.resolve()
	if err != nil {
		return "", fmt.Errorf("machine: %w", err)
	}
	if cr.Loop {
		return pipeline.LoopCacheKey(f, m, method, pipeline.Options{Optimize: cr.Optimize}), nil
	}
	return pipeline.CacheKey(f, m, method, pipeline.Options{Optimize: cr.Optimize}), nil
}

// method resolves the pipeline name.
func (cr *CompileRequest) method() (pipeline.Method, error) {
	if cr.Method == "" {
		return pipeline.URSA, nil
	}
	for _, m := range pipeline.AllMethods {
		if m.String() == cr.Method {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown method %q (want ursa, prepass, postpass, integrated-list, or exact)", cr.Method)
}

// BlockListing is one compiled basic block's VLIW words, rendered exactly
// as assign.Program.String() — byte-identical to an in-process compile.
type BlockListing struct {
	Label   string `json:"label"`
	Listing string `json:"listing"`
}

// StatsJSON mirrors pipeline.Stats for the wire.
type StatsJSON struct {
	Words          int     `json:"words"`
	SpillOps       int     `json:"spill_ops"`
	IntRegs        int     `json:"int_regs"`
	FPRegs         int     `json:"fp_regs"`
	URSATransforms int     `json:"ursa_transforms,omitempty"`
	URSAFits       bool    `json:"ursa_fits,omitempty"`
	Cycles         int     `json:"cycles,omitempty"`
	Issued         int     `json:"issued,omitempty"`
	Utilization    float64 `json:"utilization,omitempty"`
	Verified       bool    `json:"verified,omitempty"`
}

func statsJSON(st *pipeline.Stats) StatsJSON {
	return StatsJSON{
		Words:          st.Words,
		SpillOps:       st.SpillOps,
		IntRegs:        st.RegsUsed[ir.ClassInt],
		FPRegs:         st.RegsUsed[ir.ClassFP],
		URSATransforms: st.URSATransforms,
		URSAFits:       st.URSAFits,
		Cycles:         st.Cycles,
		Issued:         st.Issued,
		Utilization:    st.Utilization,
		Verified:       st.Verified,
	}
}

// MemCell is one non-spill memory cell of the final state, in sorted
// order (matching the ursac CLI's dump).
type MemCell struct {
	Sym   string `json:"sym"`
	Off   int64  `json:"off"`
	Value int64  `json:"value"`
}

// RunJSON reports an execution.
type RunJSON struct {
	Cycles   int       `json:"cycles"`
	Issued   int       `json:"issued"`
	SpillOps int       `json:"spill_ops"`
	Blocks   int       `json:"block_executions"`
	Mem      []MemCell `json:"mem,omitempty"`
}

func memCells(st *ir.State) []MemCell {
	var cells []MemCell
	for a, w := range st.Mem {
		if len(a.Sym) >= 5 && a.Sym[:5] == "spill" {
			continue
		}
		cells = append(cells, MemCell{Sym: a.Sym, Off: a.Off, Value: w.Int()})
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Sym != cells[j].Sym {
			return cells[i].Sym < cells[j].Sym
		}
		return cells[i].Off < cells[j].Off
	})
	return cells
}

// CacheDelta is the cache activity attributed to one request: the shared
// measurement cache's hits and misses observed between request start and
// finish, plus — when the artifact cache is enabled — which tier served
// the compile result ("memory", "disk", "peer", "coalesced", or
// "compiled" when every tier missed) and a per-tier totals snapshot.
// Under concurrent requests the measurement attribution is approximate
// (the counters are process-wide), but the sum across requests is exact.
type CacheDelta struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Result string `json:"result,omitempty"`
	// Key is the canonical compile-result cache key (pipeline.CacheKey)
	// when the artifact cache is enabled — the handle for
	// GET /v1/cache/{key} and the unit the cluster router shards on.
	Key       string           `json:"key,omitempty"`
	Artifacts *store.TierStats `json:"artifacts,omitempty"`
}

// GapJSON quantifies how far the chosen method landed from the exact
// solver's proven optima, aggregated over the function's blocks the way
// Stats aggregates (words sum, register pressure maxes). Present only
// when the request set "gap": true. When any block exceeds the solver's
// node limit or search budget, Skipped carries the refusal and the
// numeric fields are absent. WordsGap compares against the program-model
// minimum, so it is nonnegative for every method; the register gaps may
// go negative when spill code trades registers for memory traffic.
type GapJSON struct {
	ExactWords   int    `json:"exact_words,omitempty"`
	ExactIntRegs int    `json:"exact_int_regs,omitempty"`
	ExactFPRegs  int    `json:"exact_fp_regs,omitempty"`
	WordsGap     int    `json:"words_gap"`
	IntRegsGap   int    `json:"int_regs_gap"`
	FPRegsGap    int    `json:"fp_regs_gap"`
	Skipped      string `json:"skipped,omitempty"`
}

// LoopJSON reports one software-pipelined loop: the initiation interval
// the modulo scheduler accepted against the classic lower bounds, the
// modulo-variable-expansion blocking factor, and the steady-state cost.
// Present only on "loop": true requests.
type LoopJSON struct {
	Head        string `json:"head"`
	ResMII      int    `json:"res_mii"`
	RecMII      int    `json:"rec_mii"`
	MII         int    `json:"mii"`
	II          int    `json:"ii"`
	Stages      int    `json:"stages"`
	Unroll      int    `json:"unroll"`
	KernelWords int    `json:"kernel_words"`
	AchievedII  int    `json:"achieved_ii"`
}

// CompileResponse is POST /v1/compile's body.
type CompileResponse struct {
	Name      string         `json:"name,omitempty"`
	Method    string         `json:"method"`
	Machine   string         `json:"machine"`
	Blocks    []BlockListing `json:"blocks"`
	Stats     StatsJSON      `json:"stats"`
	Gap       *GapJSON       `json:"gap,omitempty"`
	Loops     []LoopJSON     `json:"loops,omitempty"`
	Run       *RunJSON       `json:"run,omitempty"`
	Cache     CacheDelta     `json:"cache"`
	ElapsedMS float64        `json:"elapsed_ms"`
}

// BatchRequest fans a set of compile jobs over the parallel driver.
type BatchRequest struct {
	Jobs []CompileRequest `json:"jobs"`
	// Workers bounds the batch's job-level parallelism; 0 means
	// GOMAXPROCS. Results are independent of the worker count.
	Workers int `json:"workers,omitempty"`
}

// BatchResult is one job's outcome: a response or an error, never both.
type BatchResult struct {
	*CompileResponse
	Error string `json:"error,omitempty"`
}

// BatchResponse is POST /v1/batch's body. Results are in job submission
// order.
type BatchResponse struct {
	Results   []BatchResult `json:"results"`
	Errors    int           `json:"errors"`
	Cache     CacheDelta    `json:"cache"`
	ElapsedMS float64       `json:"elapsed_ms"`
}

// ErrorResponse is any endpoint's failure body.
type ErrorResponse struct {
	Error string `json:"error"`
}

// MachineJSON describes one preset for GET /v1/machines.
type MachineJSON struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Family      string `json:"family"`
	Homogeneous bool   `json:"homogeneous"`
	// Units is the machine-wide total across classes and clusters.
	Units       int    `json:"units"`
	IntRegs     int    `json:"int_regs"`
	FPRegs      int    `json:"fp_regs"`
	Clusters    int    `json:"clusters,omitempty"`
	BufferDepth int    `json:"buffer_depth,omitempty"`
	IssueWidth  int    `json:"issue_width,omitempty"`
	Summary     string `json:"summary"`
}

// MeasureCacheJSON snapshots the process-wide measurement cache for
// /healthz, so an operator can see warm/cold state without scraping
// /metrics.
type MeasureCacheJSON struct {
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Coalesced uint64 `json:"coalesced"`
}

// HealthJSON is GET /healthz's body. ArtifactCache is present only when
// the artifact cache is enabled.
type HealthJSON struct {
	Status        string            `json:"status"`
	Draining      bool              `json:"draining"`
	InFlight      int64             `json:"in_flight"`
	Queued        int64             `json:"queued"`
	MeasureCache  *MeasureCacheJSON `json:"measure_cache,omitempty"`
	ArtifactCache *store.TierStats  `json:"artifact_cache,omitempty"`
}
