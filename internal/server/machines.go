package server

import (
	"ursa/internal/ir"
	"ursa/internal/target"
)

// The served machine catalog is the target package's preset catalog: the
// paper's evaluation range plus the clustered, wide-superscalar, and
// exposed-datapath families. The server adds no presets of its own, so
// ursac -machine, the fuzzer's sampler, and /v1/machines always agree.

// presetByName returns the named preset, or nil.
func presetByName(name string) *target.Preset { return target.ByName(name) }

// machineJSON renders a preset for the /v1/machines listing.
func machineJSON(p *target.Preset) MachineJSON {
	m := p.Config
	units := 0
	for _, cl := range m.FUClasses() {
		units += m.TotalUnits(cl)
	}
	return MachineJSON{
		Name:        p.Name,
		Description: p.Description,
		Family:      string(target.FamilyOf(m)),
		Homogeneous: m.Homogeneous,
		Units:       units,
		IntRegs:     m.Regs[ir.ClassInt],
		FPRegs:      m.Regs[ir.ClassFP],
		Clusters:    m.Clusters,
		BufferDepth: m.BufferDepth,
		IssueWidth:  m.IssueWidth,
		Summary:     m.String(),
	}
}
