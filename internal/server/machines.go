package server

import (
	"ursa/internal/ir"
	"ursa/internal/machine"
)

// A Preset is a named machine configuration clients can select without
// spelling out widths and register files. The set spans the paper's
// evaluation range (§5): the Figure 2 machine, the homogeneous sweep
// points, and the two heterogeneous configurations.
type Preset struct {
	Name        string
	Description string
	Config      *machine.Config
}

// presets lists the served machine configurations in presentation order.
var presets = []Preset{
	{"paper2x3", "the paper's Figure 2 machine: 2 FUs, 3 registers", machine.VLIW(2, 3)},
	{"vliw1x4", "scalar baseline: 1 FU, 4 registers", machine.VLIW(1, 4)},
	{"vliw2x4", "2 FUs, 4 registers", machine.VLIW(2, 4)},
	{"vliw2x8", "2 FUs, 8 registers", machine.VLIW(2, 8)},
	{"vliw4x6", "4 FUs, 6 registers", machine.VLIW(4, 6)},
	{"vliw4x8", "default: 4 FUs, 8 registers", machine.VLIW(4, 8)},
	{"vliw8x12", "wide: 8 FUs, 12 registers", machine.VLIW(8, 12)},
	{"hetero-small", "2 IALU + 1 FALU + 1 MEM + 1 BR, 6 int / 4 fp registers",
		machine.Heterogeneous(2, 1, 1, 1, 6, 4)},
	{"hetero-big", "2 IALU + 2 FALU + 2 MEM + 1 BR, 8 int / 8 fp registers",
		machine.Heterogeneous(2, 2, 2, 1, 8, 8)},
}

// presetByName returns the named preset, or nil.
func presetByName(name string) *Preset {
	for i := range presets {
		if presets[i].Name == name {
			return &presets[i]
		}
	}
	return nil
}

// machineJSON renders a preset for the /v1/machines listing.
func machineJSON(p *Preset) MachineJSON {
	m := p.Config
	units := 0
	if m.Homogeneous {
		units = m.Units[machine.ANY]
	} else {
		for _, cl := range m.FUClasses() {
			units += m.Units[cl]
		}
	}
	return MachineJSON{
		Name:        p.Name,
		Description: p.Description,
		Homogeneous: m.Homogeneous,
		Units:       units,
		IntRegs:     m.Regs[ir.ClassInt],
		FPRegs:      m.Regs[ir.ClassFP],
		Summary:     m.String(),
	}
}
