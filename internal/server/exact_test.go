package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"ursa/internal/store"
)

// TestCompileExactMethod: the guarded exact lane is a first-class
// pipeline on the wire, and on the paper example (well under the node
// limit) it must succeed and emit no more words than the default method.
func TestCompileExactMethod(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var exact, ursa CompileResponse
	if code, raw := postJSON(t, ts.URL+"/v1/compile", CompileRequest{Method: "exact"}, &exact); code != http.StatusOK {
		t.Fatalf("exact compile: %d\n%s", code, raw)
	}
	if exact.Method != "exact" {
		t.Fatalf("method = %q; want exact", exact.Method)
	}
	if code, raw := postJSON(t, ts.URL+"/v1/compile", CompileRequest{Method: "ursa"}, &ursa); code != http.StatusOK {
		t.Fatalf("ursa compile: %d\n%s", code, raw)
	}
	if exact.Stats.Words > ursa.Stats.Words {
		t.Errorf("exact lane emitted %d words, ursa %d; the optimal lane may not lose", exact.Stats.Words, ursa.Stats.Words)
	}
}

// TestTwoDaemonExactByteIdentical is the exact lane's golden fleet
// property: daemon A computes the optimal schedule, daemon B serves the
// identical artifact from A's cache over the peer protocol without ever
// running the solver.
func TestTwoDaemonExactByteIdentical(t *testing.T) {
	_, urlA := newCachedServer(t, nil)
	peer, err := store.NewPeer(urlA, 0)
	if err != nil {
		t.Fatalf("NewPeer: %v", err)
	}
	_, urlB := newCachedServer(t, peer)

	req := CompileRequest{Method: "exact", Machine: MachineSpec{Preset: "paper2x3"}}
	var fromA, fromB CompileResponse
	if code, raw := postJSON(t, urlA+"/v1/compile", req, &fromA); code != http.StatusOK {
		t.Fatalf("compile on A: %d\n%s", code, raw)
	}
	if code, raw := postJSON(t, urlB+"/v1/compile", req, &fromB); code != http.StatusOK {
		t.Fatalf("compile on B: %d\n%s", code, raw)
	}
	if fromB.Cache.Result != "peer" {
		t.Fatalf("B served by %q; want peer", fromB.Cache.Result)
	}
	aBlocks, _ := json.Marshal(fromA.Blocks)
	bBlocks, _ := json.Marshal(fromB.Blocks)
	if !bytes.Equal(aBlocks, bBlocks) {
		t.Errorf("peer-served exact listings differ:\nA %s\nB %s", aBlocks, bBlocks)
	}
	if fromA.Stats != fromB.Stats {
		t.Errorf("peer-served stats %+v != origin stats %+v", fromB.Stats, fromA.Stats)
	}
}

// TestCompileGapReport: "gap": true attaches the solver's verdict to the
// response, and the heuristic can never beat the program-model optimum
// on words.
func TestCompileGapReport(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, method := range []string{"ursa", "exact"} {
		var resp CompileResponse
		if code, raw := postJSON(t, ts.URL+"/v1/compile", CompileRequest{Method: method, Gap: true}, &resp); code != http.StatusOK {
			t.Fatalf("%s: %d\n%s", method, code, raw)
		}
		if resp.Gap == nil {
			t.Fatalf("%s: gap requested but absent", method)
		}
		if resp.Gap.Skipped != "" {
			t.Fatalf("%s: solver skipped the paper example: %s", method, resp.Gap.Skipped)
		}
		if resp.Gap.ExactWords <= 0 {
			t.Errorf("%s: exact words = %d; want positive", method, resp.Gap.ExactWords)
		}
		if resp.Gap.WordsGap < 0 {
			t.Errorf("%s: words gap %d is negative: emitted %d vs optimum %d",
				method, resp.Gap.WordsGap, resp.Stats.Words, resp.Gap.ExactWords)
		}
		if got := resp.Stats.Words - resp.Gap.ExactWords; resp.Gap.WordsGap != got {
			t.Errorf("%s: words gap %d inconsistent with stats (%d - %d)",
				method, resp.Gap.WordsGap, resp.Stats.Words, resp.Gap.ExactWords)
		}
	}

	// Without the flag the field stays absent.
	var plain CompileResponse
	if code, raw := postJSON(t, ts.URL+"/v1/compile", CompileRequest{}, &plain); code != http.StatusOK {
		t.Fatalf("plain: %d\n%s", code, raw)
	}
	if plain.Gap != nil {
		t.Error("gap present without the request flag")
	}
}

// TestGapMetricExposed: gap-enabled compiles feed the ursa_heuristic_gap
// histogram on /metrics.
func TestGapMetricExposed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var resp CompileResponse
	if code, raw := postJSON(t, ts.URL+"/v1/compile", CompileRequest{Gap: true}, &resp); code != http.StatusOK {
		t.Fatalf("compile: %d\n%s", code, raw)
	}
	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer r.Body.Close()
	body, _ := io.ReadAll(r.Body)
	text := string(body)
	for _, dim := range []string{"words", "intregs", "fpregs"} {
		needle := `ursa_heuristic_gap_count{dimension="` + dim + `"} 1`
		if !strings.Contains(text, needle) {
			t.Errorf("metrics missing %q", needle)
		}
	}
}
