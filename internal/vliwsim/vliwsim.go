// Package vliwsim executes emitted VLIW programs on a simulated machine:
// instruction words issue cycle by cycle, results write back after their
// operation's latency, and non-pipelined functional-unit occupancy is
// enforced. It stands in for the paper's (never-measured) hardware targets
// and doubles as the end-to-end semantic checker: a program must compute
// exactly what the sequential IR interpreter computes.
package vliwsim

import (
	"fmt"
	"strings"

	"ursa/internal/assign"
	"ursa/internal/ir"
	"ursa/internal/machine"
)

// Result reports one simulation.
type Result struct {
	Cycles int
	Issued int
	State  *ir.State
	// MaxBusy is the peak number of simultaneously busy units per FU class.
	MaxBusy map[machine.FUClass]int
	// Exit records how control left the program: "" for fall-through,
	// "ret" for a return, otherwise the taken branch's target label.
	// Instruction words after a taken branch are squashed (they never
	// issue), but operations already in flight complete.
	Exit string
	// SpillOps counts issued spill stores and reloads.
	SpillOps int
}

// Utilization returns issued-instructions per cycle.
func (r *Result) Utilization() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Issued) / float64(r.Cycles)
}

type pendingWrite struct {
	at  int
	reg ir.VReg
	val ir.Word
}

type pendingStore struct {
	at   int
	addr ir.Addr
	val  ir.Word
}

// Run executes the program against a copy of the initial state and returns
// the final state. It fails if any cycle over-subscribes a functional-unit
// class (non-pipelined occupancy) — emitted code must never do that.
func Run(p *assign.Program, init *ir.State) (*Result, error) {
	m := p.Machine
	st := init.Clone()
	res := &Result{State: st, MaxBusy: map[machine.FUClass]int{}}

	var regWrites []pendingWrite
	var memWrites []pendingStore
	// Units audit per (class, cluster): clustered machines replicate their
	// classes per cluster, except the machine-wide XFER bus (cluster key 0).
	type unitKey struct {
		cl      machine.FUClass
		cluster uint8
	}
	busyUntil := map[unitKey][]int{} // per issued op: busy-until cycle
	regCluster := map[ir.VReg]uint8{}
	clustered := m.Clusters > 1
	totalCycles := len(p.Words)

	commit := func(cycle int) {
		for i := 0; i < len(regWrites); {
			if regWrites[i].at <= cycle {
				st.Regs[regWrites[i].reg] = regWrites[i].val
				regWrites = append(regWrites[:i], regWrites[i+1:]...)
			} else {
				i++
			}
		}
		for i := 0; i < len(memWrites); {
			if memWrites[i].at <= cycle {
				st.Mem[memWrites[i].addr] = memWrites[i].val
				memWrites = append(memWrites[:i], memWrites[i+1:]...)
			} else {
				i++
			}
		}
	}

	taken := false
	for cycle := 0; cycle < totalCycles && !taken; cycle++ {
		commit(cycle)
		if m.IssueWidth > 0 && len(p.Words[cycle]) > m.IssueWidth {
			return nil, fmt.Errorf("vliwsim: cycle %d issues %d instructions, issue width is %d",
				cycle, len(p.Words[cycle]), m.IssueWidth)
		}
		for _, in := range p.Words[cycle] {
			cl := m.ClassFor(in.Kind())
			lat := m.LatencyOf(in.Op)
			key := unitKey{cl: cl}
			if clustered && cl != machine.XFER {
				key.cluster = in.Cluster
			}
			// Unit-occupancy check (whole latency unless pipelined).
			inUse := 0
			for _, until := range busyUntil[key] {
				if until > cycle {
					inUse++
				}
			}
			if inUse >= m.Units.Get(cl) {
				return nil, fmt.Errorf("vliwsim: cycle %d over-subscribes %s units (%d busy of %d)",
					cycle, cl, inUse, m.Units.Get(cl))
			}
			busyUntil[key] = append(busyUntil[key], cycle+m.OccupancyOf(in.Op))
			if inUse+1 > res.MaxBusy[cl] {
				res.MaxBusy[cl] = inUse + 1
			}
			if clustered {
				if err := auditCluster(p, in, regCluster, cycle); err != nil {
					return nil, err
				}
			}

			// Execute: reads see the committed state of this cycle; the
			// result lands after the latency.
			switch {
			case in.IsBranch():
				switch in.Op {
				case ir.Br:
					res.Exit = in.Sym
					taken = true
				case ir.BrTrue:
					if st.Regs[in.Args[0]].Int() != 0 {
						res.Exit = in.Sym
						taken = true
					}
				case ir.BrFalse:
					if st.Regs[in.Args[0]].Int() == 0 {
						res.Exit = in.Sym
						taken = true
					}
				case ir.Ret:
					res.Exit = "ret"
					taken = true
				}
			case in.Dst != ir.NoReg:
				// Compute into a scratch state to delay the writeback.
				scratch := &ir.State{Regs: map[ir.VReg]ir.Word{}, Mem: st.Mem}
				for k, v := range st.Regs {
					scratch.Regs[k] = v
				}
				scratch.Exec(p.Func, in)
				regWrites = append(regWrites, pendingWrite{cycle + lat, in.Dst, scratch.Regs[in.Dst]})
			case in.IsStore():
				addr := effAddr(st, in)
				memWrites = append(memWrites, pendingStore{cycle + lat, addr, st.Regs[in.Args[0]]})
			}
			res.Issued++
			if in.Op == ir.SpillStore || in.Op == ir.SpillLoad {
				res.SpillOps++
			}
			if cycle+lat > res.Cycles {
				res.Cycles = cycle + lat
			}
		}
	}
	commit(res.Cycles)
	if res.Cycles < totalCycles {
		res.Cycles = totalCycles
	}
	return res, nil
}

func effAddr(st *ir.State, in *ir.Instr) ir.Addr {
	off := in.Off
	if in.Index != ir.NoReg {
		off += st.Regs[in.Index].Int()
	}
	return ir.Addr{Sym: in.Sym, Off: off}
}

// Verify runs the program and checks it against the sequential
// interpretation of the original block: every non-spill memory cell must
// match, and every live-out virtual register must match its assigned
// physical register. It returns the simulation result for stats.
func Verify(p *assign.Program, orig *ir.Block, init *ir.State) (*Result, error) {
	ref := init.Clone()
	for _, in := range orig.Instrs {
		if in.IsBranch() {
			break
		}
		ref.Exec(orig.Func, in)
	}
	res, err := Run(p, init)
	if err != nil {
		return nil, err
	}
	for addr, want := range ref.Mem {
		if isSpillSlot(addr.Sym) {
			continue
		}
		if got := res.State.Mem[addr]; got != want {
			return nil, fmt.Errorf("vliwsim: mem %s[%d] = %d, want %d",
				addr.Sym, addr.Off, got.Int(), want.Int())
		}
	}
	for addr, got := range res.State.Mem {
		if isSpillSlot(addr.Sym) {
			continue
		}
		if want, ok := ref.Mem[addr]; !ok && got != 0 {
			return nil, fmt.Errorf("vliwsim: unexpected write to %s[%d] = %d",
				addr.Sym, addr.Off, got.Int())
		} else if ok && got != want {
			return nil, fmt.Errorf("vliwsim: mem %s[%d] = %d, want %d",
				addr.Sym, addr.Off, got.Int(), want.Int())
		}
	}
	for v, phys := range p.OutMap {
		if got, want := res.State.Regs[phys], ref.Regs[v]; got != want {
			return nil, fmt.Errorf("vliwsim: live-out %s (in %s) = %d, want %d",
				orig.Func.NameOf(v), p.Func.NameOf(phys), got.Int(), want.Int())
		}
	}
	return res, nil
}

func isSpillSlot(sym string) bool {
	return strings.HasPrefix(sym, "spill")
}
