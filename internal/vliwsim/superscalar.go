package vliwsim

import (
	"fmt"

	"ursa/internal/assign"
	"ursa/internal/ir"
	"ursa/internal/machine"
)

// RunInOrder executes the program's instructions in linear (flattened word)
// order on an in-order superscalar core — the §6 future-work target: the
// machine fetches a sequential stream and issues up to the unit limits per
// cycle, stalling on RAW interlocks, structural hazards, and memory
// conflicts instead of relying on compiler-guaranteed word parallelism.
// Register WAR/WAW hazards do not stall (in-order issue with in-order
// writeback per register makes them safe at distinct cycles; same-cycle
// cases are excluded by the RAW/issue rules below).
//
// The code quality question this answers: does the *order* a pipeline
// emits still matter when the hardware interlocks? (Paper §6: "Extensions
// to handle the problems caused by interlocks in pipelines are also being
// developed, so that superscalar architectures can be targeted.")
func RunInOrder(p *assign.Program, init *ir.State) (*Result, error) {
	m := p.Machine
	st := init.Clone()
	res := &Result{State: st, MaxBusy: map[machine.FUClass]int{}}

	seq := p.Instrs()
	readyAt := map[ir.VReg]int{}    // register -> cycle its value commits
	writeBusy := map[ir.VReg]int{}  // register -> last pending write commit
	memReady := map[string]int{}    // symbol -> cycle last store commits
	memLastRead := map[string]int{} // symbol -> last load issue cycle
	busyUntil := map[machine.FUClass][]int{}

	var regWrites []pendingWrite
	var memWrites []pendingStore
	commit := func(cycle int) {
		for i := 0; i < len(regWrites); {
			if regWrites[i].at <= cycle {
				st.Regs[regWrites[i].reg] = regWrites[i].val
				regWrites = append(regWrites[:i], regWrites[i+1:]...)
			} else {
				i++
			}
		}
		for i := 0; i < len(memWrites); {
			if memWrites[i].at <= cycle {
				st.Mem[memWrites[i].addr] = memWrites[i].val
				memWrites = append(memWrites[:i], memWrites[i+1:]...)
			} else {
				i++
			}
		}
	}

	cycle := 0
	idx := 0
	guard := 0
	for idx < len(seq) {
		if guard++; guard > 64*len(seq)+1024 {
			return nil, fmt.Errorf("vliwsim: in-order execution stalled at instruction %d", idx)
		}
		commit(cycle)
		issuedThisCycle := 0
		for idx < len(seq) {
			if m.IssueWidth > 0 && issuedThisCycle >= m.IssueWidth {
				break // fetch bound: the rest of the stream waits a cycle
			}
			in := seq[idx]
			cl := m.ClassFor(in.Kind())
			lat := m.LatencyOf(in.Op)

			// RAW interlock: all operands must have committed.
			stall := false
			for _, u := range in.Uses() {
				if readyAt[u] > cycle {
					stall = true
					break
				}
			}
			// WAW on the same register: wait for the earlier write.
			if !stall && in.Dst != ir.NoReg && writeBusy[in.Dst] > cycle {
				stall = true
			}
			// Memory: loads wait for earlier stores to the symbol; stores
			// wait for earlier stores and must not bypass reads issued
			// this very cycle.
			if !stall && in.IsMem() {
				if memReady[in.Sym] > cycle {
					stall = true
				}
				if in.IsStore() && memLastRead[in.Sym] >= cycle {
					// Same-cycle read of the old value is fine on real
					// hardware (read at issue, write at commit), so only
					// future reads matter; no stall needed here.
					stall = stall || false
				}
			}
			// Structural hazard: a unit of the class must be free.
			unitFree := false
			if !stall {
				inUse := 0
				for _, until := range busyUntil[cl] {
					if until > cycle {
						inUse++
					}
				}
				unitFree = inUse < m.Units.Get(cl)
				if inUse+1 > res.MaxBusy[cl] && unitFree {
					res.MaxBusy[cl] = inUse + 1
				}
			}
			if stall || !unitFree {
				break // in-order: the head of the stream blocks everything
			}

			// Issue.
			busyUntil[cl] = append(busyUntil[cl], cycle+m.OccupancyOf(in.Op))
			switch {
			case in.IsBranch():
				taken := in.Op == ir.Br ||
					(in.Op == ir.BrTrue && st.Regs[in.Args[0]].Int() != 0) ||
					(in.Op == ir.BrFalse && st.Regs[in.Args[0]].Int() == 0) ||
					in.Op == ir.Ret
				res.Issued++
				idx++
				if taken {
					switch in.Op {
					case ir.Ret:
						res.Exit = "ret"
					default:
						res.Exit = in.Sym
					}
					idx = len(seq)
				}
				if cycle+lat > res.Cycles {
					res.Cycles = cycle + lat
				}
				issuedThisCycle++
				continue
			case in.Dst != ir.NoReg:
				scratch := &ir.State{Regs: map[ir.VReg]ir.Word{}, Mem: st.Mem}
				for k, v := range st.Regs {
					scratch.Regs[k] = v
				}
				scratch.Exec(p.Func, in)
				regWrites = append(regWrites, pendingWrite{cycle + lat, in.Dst, scratch.Regs[in.Dst]})
				readyAt[in.Dst] = cycle + lat
				writeBusy[in.Dst] = cycle + lat
				if in.IsLoad() {
					memLastRead[in.Sym] = cycle
				}
			case in.IsStore():
				addr := effAddr(st, in)
				memWrites = append(memWrites, pendingStore{cycle + lat, addr, st.Regs[in.Args[0]]})
				memReady[in.Sym] = cycle + lat
			}
			res.Issued++
			if in.Op == ir.SpillStore || in.Op == ir.SpillLoad {
				res.SpillOps++
			}
			if cycle+lat > res.Cycles {
				res.Cycles = cycle + lat
			}
			issuedThisCycle++
			idx++
		}
		_ = issuedThisCycle
		cycle++
	}
	commit(res.Cycles)
	if cycle > res.Cycles {
		res.Cycles = cycle
	}
	return res, nil
}
