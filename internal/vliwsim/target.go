package vliwsim

import (
	"fmt"
	"sort"

	"ursa/internal/assign"
	"ursa/internal/ir"
	"ursa/internal/machine"
)

// auditCluster enforces clustered-register-file legality on one issued
// instruction: a physical register belongs to exactly one cluster (the one
// whose instructions define it), ordinary instructions may only touch their
// own cluster's registers, and a copy reads across clusters onto the bus.
// regCluster accumulates each register's owning cluster as defs appear.
func auditCluster(p *assign.Program, in *ir.Instr, regCluster map[ir.VReg]uint8, cycle int) error {
	m := p.Machine
	if int(in.Cluster) >= m.NumClusters() {
		return fmt.Errorf("vliwsim: cycle %d: %s on nonexistent cluster %d",
			cycle, p.Func.InstrString(in), in.Cluster)
	}
	for _, u := range in.Uses() {
		uc, known := regCluster[u]
		if !known {
			continue // never defined: live-in state, no cluster claim
		}
		if in.IsCopy() {
			if uc == in.Cluster {
				return fmt.Errorf("vliwsim: cycle %d: copy %s reads %s from its own cluster %d",
					cycle, p.Func.InstrString(in), p.Func.NameOf(u), uc)
			}
			continue
		}
		if uc != in.Cluster {
			return fmt.Errorf("vliwsim: cycle %d: %s (cluster %d) reads %s owned by cluster %d",
				cycle, p.Func.InstrString(in), in.Cluster, p.Func.NameOf(u), uc)
		}
	}
	if in.Dst != ir.NoReg {
		if dc, known := regCluster[in.Dst]; known && dc != in.Cluster {
			return fmt.Errorf("vliwsim: cycle %d: %s redefines %s across clusters (%d vs %d)",
				cycle, p.Func.InstrString(in), p.Func.NameOf(in.Dst), dc, in.Cluster)
		}
		regCluster[in.Dst] = in.Cluster
	}
	return nil
}

// AuditBuffers statically checks an emitted program against the
// exposed-datapath buffer bound: every value a functional unit produces
// occupies one of its class's Units×BufferDepth output-buffer slots from
// its issue cycle until its last reader issues (half-open, so a reader
// frees the slot for a same-cycle producer), unless it retires straight to
// the register file as a program live-out. Dead values occupy their slot
// for one cycle.
//
// The audit applies to cleanly emitted code: assignment-phase spill
// patching (Program.Spills > 0) packs greedily with no buffer model, so
// callers should skip patched programs. It is a no-op on machines without
// buffers.
func AuditBuffers(p *assign.Program) error {
	m := p.Machine
	if m.BufferDepth <= 0 {
		return nil
	}

	// A value is one definition of a physical register: it lives from its
	// defining cycle to the issue of its last read before the register's
	// next redefinition.
	type value struct {
		cl         machine.FUClass
		start, end int // [start, end) slot occupancy
		retires    bool
	}
	type def struct {
		cl    machine.FUClass
		cycle int
		last  int // last read cycle seen, -1 if none
		read  bool
	}
	live := map[ir.VReg]*def{}
	var vals []value
	finish := func(d *def, redefined bool) {
		if d == nil {
			return
		}
		switch {
		case d.read:
			vals = append(vals, value{cl: d.cl, start: d.cycle, end: d.last})
		case redefined:
			// Dead value: produced, never read, overwritten later.
			vals = append(vals, value{cl: d.cl, start: d.cycle, end: d.cycle + 1})
		default:
			// Never read, never redefined: retires to the register file.
			vals = append(vals, value{cl: d.cl, start: d.cycle, retires: true})
		}
	}
	for cycle, w := range p.Words {
		for _, in := range w {
			for _, u := range in.Uses() {
				if d := live[u]; d != nil {
					d.read = true
					if cycle > d.last {
						d.last = cycle
					}
				}
			}
		}
		// Reads happen at issue; a redefinition in the same cycle starts a
		// fresh value after the old one's readers are done.
		for _, in := range w {
			if in.Dst == ir.NoReg {
				continue
			}
			finish(live[in.Dst], true)
			live[in.Dst] = &def{cl: m.ClassFor(in.Kind()), cycle: cycle, last: -1}
		}
	}
	for _, d := range live {
		finish(d, false)
	}

	// Sweep each class: +1 at start, -1 at end (retiring values never hold
	// a slot past their defining cycle's writeback — they stream to the RF).
	type evt struct {
		at, delta int
	}
	byClass := map[machine.FUClass][]evt{}
	for _, v := range vals {
		if v.retires {
			continue
		}
		end := v.end
		if end <= v.start {
			end = v.start + 1
		}
		byClass[v.cl] = append(byClass[v.cl], evt{v.start, 1}, evt{end, -1})
	}
	for cl, evts := range byClass {
		cap := m.BufferCap(cl)
		sort.Slice(evts, func(i, j int) bool {
			if evts[i].at != evts[j].at {
				return evts[i].at < evts[j].at
			}
			return evts[i].delta < evts[j].delta // frees before allocations
		})
		cur := 0
		for _, e := range evts {
			cur += e.delta
			if cur > cap {
				return fmt.Errorf("vliwsim: cycle %d holds %d in-flight %s values, buffer capacity is %d",
					e.at, cur, cl, cap)
			}
		}
	}
	return nil
}
