package vliwsim

import (
	"fmt"
	"math/rand"
	"testing"

	"ursa/internal/assign"
	"ursa/internal/core"
	"ursa/internal/dag"
	"ursa/internal/ir"
	"ursa/internal/machine"
	"ursa/internal/sched"
)

const paperSrc = `
func paper {
entry:
	v = load V[0]
	w = muli v, 2
	x = muli v, 3
	y = addi v, 5
	t1 = add w, x
	t2 = mul w, x
	t3 = muli y, 2
	t4 = divi y, 3
	t5 = div t1, t2
	t6 = add t3, t4
	z = add t5, t6
	store Z[0], z
}
`

func emitPaper(t testing.TB, m *machine.Config, ursa bool) (*assign.Program, *ir.Block) {
	t.Helper()
	f := ir.MustParse(paperSrc)
	g, err := dag.Build(f.Blocks[0])
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if ursa {
		if _, err := core.Run(g, core.Options{Machine: m}); err != nil {
			t.Fatalf("URSA: %v", err)
		}
	}
	prog, _, err := assign.Emit(g, m, sched.Options{})
	if err != nil {
		t.Fatalf("Emit: %v", err)
	}
	return prog, f.Blocks[0]
}

func TestRunAndVerifyPaper(t *testing.T) {
	for _, cfg := range []struct {
		m    *machine.Config
		ursa bool
	}{
		{machine.VLIW(4, 8), false},
		{machine.VLIW(2, 3), true},
		{machine.VLIW(1, 4), true},
		{machine.VLIW(4, 3), false}, // prepass-style: needs patch spills
	} {
		prog, blk := emitPaper(t, cfg.m, cfg.ursa)
		init := ir.NewState()
		init.StoreInt("V", 0, 7)
		res, err := Verify(prog, blk, init)
		if err != nil {
			t.Errorf("%s (ursa=%v): %v", cfg.m.Name, cfg.ursa, err)
			continue
		}
		if got := res.State.Mem[ir.Addr{Sym: "Z", Off: 0}].Int(); got != 28 {
			t.Errorf("%s: Z[0] = %d, want 28", cfg.m.Name, got)
		}
		if res.MaxBusy[machine.ANY] > cfg.m.Units[machine.ANY] {
			t.Errorf("%s: %d units busy at once", cfg.m.Name, res.MaxBusy[machine.ANY])
		}
	}
}

func TestRunDetectsOversubscription(t *testing.T) {
	m := machine.VLIW(1, 8)
	pf := ir.NewFunc("bad")
	a := pf.NewReg("r0", ir.ClassInt)
	b := pf.NewReg("r1", ir.ClassInt)
	prog := &assign.Program{
		Func:    pf,
		Machine: m,
		Words: [][]*ir.Instr{{
			{Op: ir.ConstI, Dst: a, Imm: 1},
			{Op: ir.ConstI, Dst: b, Imm: 2},
		}},
	}
	if _, err := Run(prog, ir.NewState()); err == nil {
		t.Fatal("double issue on 1-wide machine accepted")
	}
}

func TestLatencySemantics(t *testing.T) {
	// With latency 2 for mul, a dependent add must observe the delayed
	// writeback, and the simulator must respect it when words are built
	// correctly (cycle 0: mul; cycle 2: add).
	m := machine.VLIW(2, 8)
	m.Latency = machine.RealisticLatency
	pf := ir.NewFunc("lat")
	r0 := pf.NewReg("r0", ir.ClassInt)
	r1 := pf.NewReg("r1", ir.ClassInt)
	prog := &assign.Program{
		Func:    pf,
		Machine: m,
		Words: [][]*ir.Instr{
			{{Op: ir.ConstI, Dst: r0, Imm: 5}},
			{{Op: ir.MulI, Dst: r1, Args: []ir.VReg{r0}, Imm: 3}},
			{}, // mul still in flight
			{{Op: ir.AddI, Dst: r0, Args: []ir.VReg{r1}, Imm: 1}},
		},
	}
	res, err := Run(prog, ir.NewState())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := res.State.Regs[r0].Int(); got != 16 {
		t.Errorf("r0 = %d, want 16", got)
	}
	// An add issued one cycle too early would read the stale r1.
	early := &assign.Program{
		Func:    pf,
		Machine: m,
		Words: [][]*ir.Instr{
			{{Op: ir.ConstI, Dst: r0, Imm: 5}},
			{{Op: ir.MulI, Dst: r1, Args: []ir.VReg{r0}, Imm: 3}},
			{{Op: ir.AddI, Dst: r0, Args: []ir.VReg{r1}, Imm: 1}},
		},
	}
	res, err = Run(early, ir.NewState())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := res.State.Regs[r0].Int(); got == 16 {
		t.Error("premature read did not observe stale value: latency model broken")
	}
}

func TestUtilization(t *testing.T) {
	prog, blk := emitPaper(t, machine.VLIW(4, 8), false)
	init := ir.NewState()
	init.StoreInt("V", 0, 3)
	res, err := Verify(prog, blk, init)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if res.Issued != 12 {
		t.Errorf("issued %d, want 12", res.Issued)
	}
	if u := res.Utilization(); u <= 0 || u > 4 {
		t.Errorf("utilization = %f", u)
	}
}

func TestVerifyCatchesWrongCode(t *testing.T) {
	prog, blk := emitPaper(t, machine.VLIW(4, 8), false)
	// Corrupt one immediate (y = v+5 becomes y = v+9, which propagates to
	// the stored z).
	for _, in := range prog.Instrs() {
		if in.Op == ir.AddI && in.Imm == 5 {
			in.Imm = 9
			break
		}
	}
	init := ir.NewState()
	init.StoreInt("V", 0, 7)
	if _, err := Verify(prog, blk, init); err == nil {
		t.Fatal("corrupted program verified")
	}
}

// TestEndToEndRandom is the system-level property test: random program ->
// (URSA or plain) -> schedule -> assign -> simulate must equal the
// interpreter, on assorted machines.
func TestEndToEndRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	machines := []*machine.Config{
		machine.VLIW(1, 4), machine.VLIW(2, 4), machine.VLIW(4, 6),
		machine.VLIW(8, 16), machine.Heterogeneous(2, 1, 1, 1, 6, 6),
	}
	for trial := 0; trial < 30; trial++ {
		f := ir.NewFunc("rand")
		b := f.NewBlock("entry")
		var vals []ir.VReg
		n := 6 + rng.Intn(18)
		for i := 0; i < n; i++ {
			dst := f.NewReg(fmt.Sprintf("v%d", i), ir.ClassInt)
			switch {
			case len(vals) == 0 || rng.Intn(5) == 0:
				b.Append(&ir.Instr{Op: ir.Load, Dst: dst, Sym: "A", Off: int64(i % 8)})
			case rng.Intn(3) == 0:
				a := vals[rng.Intn(len(vals))]
				b.Append(&ir.Instr{Op: ir.AddI, Dst: dst, Args: []ir.VReg{a}, Imm: int64(rng.Intn(9))})
			default:
				a := vals[rng.Intn(len(vals))]
				c := vals[rng.Intn(len(vals))]
				op := []ir.Op{ir.Add, ir.Sub, ir.Mul, ir.Xor}[rng.Intn(4)]
				b.Append(&ir.Instr{Op: op, Dst: dst, Args: []ir.VReg{a, c}})
			}
			vals = append(vals, dst)
			if rng.Intn(5) == 0 {
				b.Append(&ir.Instr{Op: ir.Store, Args: []ir.VReg{dst}, Sym: "OUT", Off: int64(i)})
			}
		}
		// Consume dead values.
		used := map[ir.VReg]bool{}
		for _, in := range b.Instrs {
			for _, u := range in.Uses() {
				used[u] = true
			}
		}
		for i, v := range vals {
			if !used[v] {
				b.Append(&ir.Instr{Op: ir.Store, Args: []ir.VReg{v}, Sym: "DEAD", Off: int64(i)})
			}
		}

		m := machines[rng.Intn(len(machines))]
		if rng.Intn(3) == 0 {
			m = &machine.Config{Name: m.Name + "+lat", Homogeneous: m.Homogeneous,
				Units: m.Units, Regs: m.Regs, Latency: machine.RealisticLatency}
		}
		g, err := dag.Build(b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if rng.Intn(2) == 0 {
			if _, err := core.Run(g, core.Options{Machine: m}); err != nil {
				t.Fatalf("trial %d: URSA: %v", trial, err)
			}
		}
		prog, _, err := assign.Emit(g, m, sched.Options{})
		if err != nil {
			t.Fatalf("trial %d (%s): Emit: %v", trial, m.Name, err)
		}
		init := ir.NewState()
		for i := int64(0); i < 8; i++ {
			init.StoreInt("A", i, rng.Int63n(1000))
		}
		if _, err := Verify(prog, b, init); err != nil {
			t.Fatalf("trial %d (%s): %v", trial, m.Name, err)
		}
	}
}
