package vliwsim

import (
	"testing"

	"ursa/internal/assign"
	"ursa/internal/ir"
	"ursa/internal/machine"
)

// buildBranchy assembles a hand-written program: word 0 computes a
// condition, word 1 branches on it, words 2+ hold a store that must be
// squashed when the branch is taken.
func buildBranchy(taken bool) (*assign.Program, *ir.Func) {
	m := machine.VLIW(2, 8)
	pf := ir.NewFunc("branchy")
	c := pf.NewReg("r0", ir.ClassInt)
	v := pf.NewReg("r1", ir.ClassInt)
	imm := int64(0)
	if taken {
		imm = 1
	}
	prog := &assign.Program{
		Func:    pf,
		Machine: m,
		Words: [][]*ir.Instr{
			{{Op: ir.ConstI, Dst: c, Imm: imm}, {Op: ir.ConstI, Dst: v, Imm: 42}},
			{{Op: ir.BrTrue, Args: []ir.VReg{c}, Sym: "elsewhere"}},
			{{Op: ir.Store, Args: []ir.VReg{v}, Sym: "O", Off: 0}},
		},
	}
	return prog, pf
}

func TestBranchTakenSquashesLaterWords(t *testing.T) {
	prog, _ := buildBranchy(true)
	res, err := Run(prog, ir.NewState())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Exit != "elsewhere" {
		t.Errorf("Exit = %q, want elsewhere", res.Exit)
	}
	if got := res.State.Mem[ir.Addr{Sym: "O", Off: 0}].Int(); got != 0 {
		t.Errorf("squashed store executed: O[0] = %d", got)
	}
	if res.Issued != 3 { // both consts + the branch, not the store
		t.Errorf("issued = %d, want 3", res.Issued)
	}
}

func TestBranchNotTakenFallsThrough(t *testing.T) {
	prog, _ := buildBranchy(false)
	res, err := Run(prog, ir.NewState())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Exit != "" {
		t.Errorf("Exit = %q, want fall-through", res.Exit)
	}
	if got := res.State.Mem[ir.Addr{Sym: "O", Off: 0}].Int(); got != 42 {
		t.Errorf("store after untaken branch lost: O[0] = %d", got)
	}
}

func TestRetExit(t *testing.T) {
	m := machine.VLIW(1, 4)
	pf := ir.NewFunc("r")
	prog := &assign.Program{
		Func:    pf,
		Machine: m,
		Words:   [][]*ir.Instr{{{Op: ir.Ret}}},
	}
	res, err := Run(prog, ir.NewState())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Exit != "ret" {
		t.Errorf("Exit = %q, want ret", res.Exit)
	}
}

// TestInFlightWritesCommitAcrossTakenBranch: a store issued before the
// branch with a 2-cycle latency must still land even though the branch
// squashes later words.
func TestInFlightWritesCommitAcrossTakenBranch(t *testing.T) {
	m := machine.VLIW(2, 8)
	m.Latency = machine.RealisticLatency // stores take 2 cycles
	pf := ir.NewFunc("inflight")
	c := pf.NewReg("r0", ir.ClassInt)
	v := pf.NewReg("r1", ir.ClassInt)
	prog := &assign.Program{
		Func:    pf,
		Machine: m,
		Words: [][]*ir.Instr{
			{{Op: ir.ConstI, Dst: c, Imm: 1}, {Op: ir.ConstI, Dst: v, Imm: 7}},
			{{Op: ir.Store, Args: []ir.VReg{v}, Sym: "O", Off: 0}},
			{{Op: ir.Br, Sym: "out"}}, // store still in flight here
		},
	}
	res, err := Run(prog, ir.NewState())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Exit != "out" {
		t.Errorf("Exit = %q", res.Exit)
	}
	if got := res.State.Mem[ir.Addr{Sym: "O", Off: 0}].Int(); got != 7 {
		t.Errorf("in-flight store lost: O[0] = %d, want 7", got)
	}
}

func TestSpillOpsCounted(t *testing.T) {
	m := machine.VLIW(1, 4)
	pf := ir.NewFunc("s")
	v := pf.NewReg("r0", ir.ClassInt)
	prog := &assign.Program{
		Func:    pf,
		Machine: m,
		Words: [][]*ir.Instr{
			{{Op: ir.ConstI, Dst: v, Imm: 5}},
			{{Op: ir.SpillStore, Args: []ir.VReg{v}, Sym: "spill.x"}},
			{{Op: ir.SpillLoad, Dst: v, Sym: "spill.x"}},
		},
	}
	res, err := Run(prog, ir.NewState())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.SpillOps != 2 {
		t.Errorf("SpillOps = %d, want 2", res.SpillOps)
	}
}

// TestRunInOrderMatchesVLIW: on the paper example, in-order superscalar
// execution of the flattened program must compute the same memory state as
// the VLIW execution, with cycles no better than the VLIW schedule.
func TestRunInOrderMatchesVLIW(t *testing.T) {
	prog, blk := emitPaper(t, machine.VLIW(4, 8), true)
	init := ir.NewState()
	init.StoreInt("V", 0, 7)
	vliw, err := Verify(prog, blk, init)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	inorder, err := RunInOrder(prog, init)
	if err != nil {
		t.Fatalf("RunInOrder: %v", err)
	}
	if got := inorder.State.Mem[ir.Addr{Sym: "Z", Off: 0}].Int(); got != 28 {
		t.Errorf("Z[0] = %d, want 28", got)
	}
	if inorder.Cycles < vliw.Cycles {
		t.Errorf("in-order %d cycles beat the VLIW schedule %d", inorder.Cycles, vliw.Cycles)
	}
	if inorder.Issued != vliw.Issued {
		t.Errorf("issued %d vs %d", inorder.Issued, vliw.Issued)
	}
}

// TestRunInOrderInterlocks: with realistic latencies, a dependent chain
// must observe RAW stalls (cycles >= sum of chain latencies), and the
// result must still be correct.
func TestRunInOrderInterlocks(t *testing.T) {
	m := machine.VLIW(4, 8)
	m.Latency = machine.RealisticLatency
	pf := ir.NewFunc("chain")
	r0 := pf.NewReg("r0", ir.ClassInt)
	r1 := pf.NewReg("r1", ir.ClassInt)
	prog := &assign.Program{
		Func:    pf,
		Machine: m,
		Words: [][]*ir.Instr{{
			{Op: ir.ConstI, Dst: r0, Imm: 5},
			{Op: ir.MulI, Dst: r1, Args: []ir.VReg{r0}, Imm: 3}, // waits for const
			{Op: ir.AddI, Dst: r0, Args: []ir.VReg{r1}, Imm: 1}, // waits for mul
			{Op: ir.Store, Args: []ir.VReg{r0}, Sym: "O"},       // waits for add
		}},
	}
	res, err := RunInOrder(prog, init4())
	if err != nil {
		t.Fatalf("RunInOrder: %v", err)
	}
	// const(1) -> mul(2) -> add(1) -> store(2): at least 6 cycles.
	if res.Cycles < 6 {
		t.Errorf("cycles = %d, want >= 6 (interlocks ignored?)", res.Cycles)
	}
	if got := res.State.Mem[ir.Addr{Sym: "O"}].Int(); got != 16 {
		t.Errorf("O = %d, want 16", got)
	}
}

func init4() *ir.State { return ir.NewState() }

// TestRunInOrderStoreLoadOrdering: a load after a store to the same cell
// must observe the stored value despite the store's latency.
func TestRunInOrderStoreLoadOrdering(t *testing.T) {
	m := machine.VLIW(4, 8)
	m.Latency = machine.RealisticLatency
	pf := ir.NewFunc("memdep")
	v := pf.NewReg("r0", ir.ClassInt)
	w := pf.NewReg("r1", ir.ClassInt)
	prog := &assign.Program{
		Func:    pf,
		Machine: m,
		Words: [][]*ir.Instr{{
			{Op: ir.ConstI, Dst: v, Imm: 99},
			{Op: ir.Store, Args: []ir.VReg{v}, Sym: "M"},
			{Op: ir.Load, Dst: w, Sym: "M"},
			{Op: ir.Store, Args: []ir.VReg{w}, Sym: "O"},
		}},
	}
	res, err := RunInOrder(prog, ir.NewState())
	if err != nil {
		t.Fatalf("RunInOrder: %v", err)
	}
	if got := res.State.Mem[ir.Addr{Sym: "O"}].Int(); got != 99 {
		t.Errorf("O = %d, want 99 (load bypassed in-flight store)", got)
	}
}
