package machine

import (
	"bytes"
	"testing"

	"ursa/internal/ir"
)

func TestSpecRoundTrip(t *testing.T) {
	realistic := VLIW(4, 8)
	realistic.Latency = RealisticLatency
	configs := []*Config{
		VLIW(2, 3),
		VLIW(4, 8),
		realistic,
		Heterogeneous(2, 1, 1, 1, 6, 4),
		Clustered(2, 2, 4, 1),
		ExposedDatapath(4, 8, 2),
	}
	wide := Heterogeneous(6, 2, 3, 1, 16, 16)
	wide.IssueWidth = 12
	wide.Pipelined = true
	wide.Latency = RealisticLatency
	configs = append(configs, wide)

	for _, c := range configs {
		data, err := MarshalSpec(c)
		if err != nil {
			t.Fatalf("%s: MarshalSpec: %v", c.Name, err)
		}
		back, err := ParseSpec(data)
		if err != nil {
			t.Fatalf("%s: ParseSpec(%s): %v", c.Name, data, err)
		}
		data2, err := MarshalSpec(back)
		if err != nil {
			t.Fatalf("%s: re-MarshalSpec: %v", c.Name, err)
		}
		if !bytes.Equal(data, data2) {
			t.Errorf("%s: round trip not canonical:\n  %s\n  %s", c.Name, data, data2)
		}
		if back.Name != c.Name || back.Homogeneous != c.Homogeneous ||
			back.Clusters != c.Clusters || back.BufferDepth != c.BufferDepth ||
			back.IssueWidth != c.IssueWidth || back.Pipelined != c.Pipelined ||
			back.Regs != c.Regs {
			t.Errorf("%s: round trip changed config: %+v vs %+v", c.Name, back, c)
		}
		for cl := FUClass(0); cl < NumFUClasses; cl++ {
			if back.Units.Get(cl) != c.Units.Get(cl) {
				t.Errorf("%s: units[%s] = %d, want %d", c.Name, cl, back.Units.Get(cl), c.Units.Get(cl))
			}
		}
		for op := ir.Op(0); int(op) < ir.NumOps; op++ {
			if back.LatencyOf(op) != c.LatencyOf(op) {
				t.Errorf("%s: latency(%s) = %d, want %d", c.Name, op, back.LatencyOf(op), c.LatencyOf(op))
			}
		}
	}
}

func TestSpecRejects(t *testing.T) {
	cases := []string{
		`{`,
		`{"units":{"warp":1},"int_regs":4,"fp_regs":4}`,
		`{"units":{"ialu":2},"int_regs":4,"fp_regs":4}`,                                 // het missing classes
		`{"homogeneous":true,"units":{"any":2},"int_regs":0,"fp_regs":4}`,               // zero regs
		`{"homogeneous":true,"units":{"any":2},"int_regs":4,"fp_regs":4,"latency":"x"}`, // bad latency
		`{"homogeneous":true,"units":{"any":2,"xfer":1},"int_regs":4,"fp_regs":4}`,      // xfer, unclustered
		`{"homogeneous":true,"units":{"any":2},"clusters":2,"int_regs":4,"fp_regs":4}`,  // clustered, no bus
		`{"homogeneous":true,"units":{"any":2,"xfer":1},"clusters":2,"buffer_depth":1,"int_regs":4,"fp_regs":4}`,
	}
	for _, src := range cases {
		if _, err := ParseSpec([]byte(src)); err == nil {
			t.Errorf("ParseSpec(%s) accepted", src)
		}
	}
}

func TestSpecOfCustomLatencyFails(t *testing.T) {
	m := VLIW(2, 4)
	m.Latency = func(op ir.Op) int {
		if op == ir.Add {
			return 7
		}
		return 1
	}
	if _, err := MarshalSpec(m); err == nil {
		t.Error("custom latency closure marshalled")
	}
}

// FuzzParseSpec checks that any accepted spec re-marshals canonically:
// parse → marshal → parse → marshal must be a fixed point and never panic.
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		`{"homogeneous":true,"units":{"any":4},"int_regs":8,"fp_regs":8}`,
		`{"units":{"ialu":2,"falu":1,"mem":1,"br":1},"int_regs":6,"fp_regs":4}`,
		`{"homogeneous":true,"units":{"any":2,"xfer":1},"clusters":2,"copy_latency":1,"int_regs":4,"fp_regs":4}`,
		`{"homogeneous":true,"units":{"any":4},"buffer_depth":2,"int_regs":8,"fp_regs":8}`,
		`{"units":{"ialu":6,"falu":2,"mem":3,"br":1},"issue_width":12,"pipelined":true,"latency":"realistic","int_regs":16,"fp_regs":16}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ParseSpec(data)
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("ParseSpec accepted an invalid config: %v", err)
		}
		out, err := MarshalSpec(c)
		if err != nil {
			t.Fatalf("MarshalSpec of a parsed config failed: %v", err)
		}
		back, err := ParseSpec(out)
		if err != nil {
			t.Fatalf("reparse failed: %v\nspec: %s", err, out)
		}
		out2, err := MarshalSpec(back)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("marshal not canonical:\n  %s\n  %s", out, out2)
		}
	})
}
