package machine

import (
	"encoding/json"
	"fmt"

	"ursa/internal/ir"
)

// Spec is the portable JSON form of a Config: what compile requests embed
// inline and what the machine catalog serves. The latency function, not
// being serializable, travels as a model name.
type Spec struct {
	Name        string `json:"name,omitempty"`
	Homogeneous bool   `json:"homogeneous,omitempty"`
	// Units maps class mnemonics ("any", "ialu", "falu", "mem", "br",
	// "xfer") to unit counts. Absent classes have zero units.
	Units   map[string]int `json:"units"`
	IntRegs int            `json:"int_regs"`
	FPRegs  int            `json:"fp_regs"`
	// Latency is "unit" (default) or "realistic".
	Latency     string `json:"latency,omitempty"`
	Pipelined   bool   `json:"pipelined,omitempty"`
	Clusters    int    `json:"clusters,omitempty"`
	CopyLatency int    `json:"copy_latency,omitempty"`
	BufferDepth int    `json:"buffer_depth,omitempty"`
	IssueWidth  int    `json:"issue_width,omitempty"`
}

// Config materializes the spec into a validated machine configuration.
func (s *Spec) Config() (*Config, error) {
	c := &Config{
		Name:        s.Name,
		Homogeneous: s.Homogeneous,
		Units:       NewUnitTable(),
		Pipelined:   s.Pipelined,
		Clusters:    s.Clusters,
		CopyLatency: s.CopyLatency,
		BufferDepth: s.BufferDepth,
		IssueWidth:  s.IssueWidth,
	}
	for name, n := range s.Units {
		cl, ok := ClassByName(name)
		if !ok {
			return nil, fmt.Errorf("machine spec: unknown unit class %q", name)
		}
		c.Units[cl] = n
	}
	c.Regs[ir.ClassInt] = s.IntRegs
	c.Regs[ir.ClassFP] = s.FPRegs
	switch s.Latency {
	case "", "unit":
	case "realistic":
		c.Latency = RealisticLatency
	default:
		return nil, fmt.Errorf("machine spec: unknown latency model %q (want \"unit\" or \"realistic\")", s.Latency)
	}
	if c.Name == "" {
		c.Name = "custom"
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// SpecOf returns the portable spec of a configuration. It fails when the
// latency function matches no named model (a custom closure cannot travel
// as JSON).
func SpecOf(c *Config) (*Spec, error) {
	lat, err := latencyName(c.Latency)
	if err != nil {
		return nil, fmt.Errorf("machine %s: %w", c.Name, err)
	}
	s := &Spec{
		Name:        c.Name,
		Homogeneous: c.Homogeneous,
		Units:       make(map[string]int),
		IntRegs:     c.Regs[ir.ClassInt],
		FPRegs:      c.Regs[ir.ClassFP],
		Latency:     lat,
		Pipelined:   c.Pipelined,
		Clusters:    c.Clusters,
		CopyLatency: c.CopyLatency,
		BufferDepth: c.BufferDepth,
		IssueWidth:  c.IssueWidth,
	}
	for cl := FUClass(0); cl < NumFUClasses; cl++ {
		if n := c.Units.Get(cl); n > 0 {
			s.Units[cl.String()] = n
		}
	}
	return s, nil
}

// latencyName identifies a latency function by probing it over the whole
// opcode set: functions are not comparable in Go, but latency models are
// pure tables, so extensional equality is decidable.
func latencyName(f func(ir.Op) int) (string, error) {
	if f == nil {
		return "unit", nil
	}
	unit, realistic := true, true
	for op := ir.Op(0); int(op) < ir.NumOps; op++ {
		l := f(op)
		if l != 1 && l > 0 {
			unit = false
		}
		if l != RealisticLatency(op) {
			realistic = false
		}
	}
	switch {
	case realistic:
		return "realistic", nil
	case unit:
		return "unit", nil
	}
	return "", fmt.Errorf("latency function matches no named model")
}

// MarshalSpec renders a configuration as canonical JSON (ParseSpec's
// inverse; map keys sort, so equal configs marshal byte-identically).
func MarshalSpec(c *Config) ([]byte, error) {
	s, err := SpecOf(c)
	if err != nil {
		return nil, err
	}
	return json.Marshal(s)
}

// ParseSpec parses a JSON machine spec and materializes it into a
// validated configuration.
func ParseSpec(data []byte) (*Config, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("machine spec: %w", err)
	}
	return s.Config()
}
