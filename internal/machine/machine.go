// Package machine describes the target VLIW: how many functional units of
// each class issue per cycle, how many registers each register file holds,
// and per-operation latencies. The paper's machines are non-pipelined with
// homogeneous functional units; heterogeneous unit classes and multi-cycle
// latencies are supported as the natural extension (§5, §6).
//
// Beyond the paper's model the package describes three further target
// families (see internal/target for preset composition):
//
//   - Clustered VLIW: Clusters > 1 splits the machine into identical
//     clusters, each with its own copy of the per-class units and its own
//     register files. Values move between clusters on an explicit transfer
//     bus (the XFER class), so an inter-cluster copy consumes both an issue
//     slot and a destination register — exactly the two resources URSA
//     allocates in a unified fashion.
//   - Wide superscalar: IssueWidth > 0 caps the total instructions issued
//     per cycle across all unit classes (a fetch/decode bound narrower than
//     the sum of the units).
//   - Buffered exposed datapath: BufferDepth > 0 gives every functional
//     unit a depth-limited output buffer; a value occupies one slot of its
//     producer class from issue until its last consumer reads it, unless it
//     retires to the register file as a live-out.
package machine

import (
	"fmt"
	"strings"

	"ursa/internal/ir"
)

// FUClass is a functional-unit class.
type FUClass uint8

// Functional-unit classes.
const (
	ANY  FUClass = iota // homogeneous machines: every unit runs anything
	IALU                // integer ALU
	FALU                // floating-point ALU
	MEM                 // load/store unit
	BR                  // branch unit
	XFER                // inter-cluster transfer bus (clustered machines)
	NumFUClasses
)

// numFUClasses is kept as an internal alias for the exported bound.
const numFUClasses = NumFUClasses

// String returns the class mnemonic.
func (c FUClass) String() string {
	switch c {
	case ANY:
		return "any"
	case IALU:
		return "ialu"
	case FALU:
		return "falu"
	case MEM:
		return "mem"
	case BR:
		return "br"
	case XFER:
		return "xfer"
	}
	return fmt.Sprintf("fu(%d)", uint8(c))
}

// ClassByName returns the FU class with the given mnemonic.
func ClassByName(name string) (FUClass, bool) {
	for cl := FUClass(0); cl < NumFUClasses; cl++ {
		if cl.String() == name {
			return cl, true
		}
	}
	return 0, false
}

// UnitTable holds the functional-unit count per class, indexed by FUClass.
// Unlike the fixed array it replaced, the table is extensible: new classes
// append to the FUClass enumeration and every full-length table covers
// them. Tables built by NewUnitTable (and every constructor in this
// package) always have length NumFUClasses, so call sites may index
// directly; Get tolerates short or nil tables from hand-built configs.
type UnitTable []int

// NewUnitTable returns a zeroed full-length table.
func NewUnitTable() UnitTable { return make(UnitTable, NumFUClasses) }

// Get returns the unit count of a class, 0 when the table is short or nil.
func (t UnitTable) Get(cl FUClass) int {
	if int(cl) < len(t) {
		return t[cl]
	}
	return 0
}

// Clone returns an independent full-length copy of the table.
func (t UnitTable) Clone() UnitTable {
	c := NewUnitTable()
	copy(c, t)
	return c
}

// Total sums the unit counts over all classes.
func (t UnitTable) Total() int {
	n := 0
	for _, u := range t {
		n += u
	}
	return n
}

// Config is a machine description.
type Config struct {
	Name string
	// Homogeneous machines issue any instruction on any of Units[ANY]
	// functional units, the paper's model. Heterogeneous machines issue on
	// class-specific units.
	Homogeneous bool
	// Units holds the functional-unit count per class (index by FUClass).
	// For homogeneous machines only Units[ANY] (plus Units[XFER] on
	// clustered machines) is meaningful. On clustered machines the counts
	// are per cluster, except Units[XFER]: the transfer bus is shared
	// machine-wide.
	Units UnitTable
	// Regs holds the register-file size per register class; per cluster on
	// clustered machines.
	Regs [ir.NumClasses]int
	// Latency gives each opcode's execution time in cycles; nil means unit
	// latency. By default units are not pipelined: a unit is busy for the
	// whole latency of the instruction it executes (the paper's §3.2
	// model).
	Latency func(op ir.Op) int
	// Pipelined units accept a new instruction every cycle while earlier
	// results are still in flight — the §6 future-work direction toward
	// superscalar/pipelined targets. Dependences still wait the full
	// latency; only unit occupancy changes.
	Pipelined bool

	// Clusters > 1 selects the clustered model: that many identical
	// clusters, each with its own Units (bar XFER) and register files.
	// 0 and 1 both mean unclustered.
	Clusters int
	// CopyLatency is the latency of an inter-cluster copy; 0 means 1.
	CopyLatency int
	// BufferDepth > 0 selects the buffered exposed-datapath model: each
	// functional unit owns an output buffer of this depth, so at most
	// Units[cl]·BufferDepth values produced by class cl may be in flight
	// (defined, not yet consumed by their last reader, not retired as a
	// live-out) at once.
	BufferDepth int
	// IssueWidth > 0 caps the total instructions issued per cycle across
	// all classes (wide-superscalar fetch bound). 0 means no global cap.
	IssueWidth int
}

// OccupancyOf returns how many cycles one instruction keeps its unit busy.
func (c *Config) OccupancyOf(op ir.Op) int {
	if c.Pipelined {
		return 1
	}
	return c.LatencyOf(op)
}

// VLIW returns the paper's machine model: a homogeneous VLIW issuing width
// instructions per cycle with regs registers in each register file, unit
// latencies.
func VLIW(width, regs int) *Config {
	c := &Config{
		Name:        fmt.Sprintf("vliw%dx%dr", width, regs),
		Homogeneous: true,
		Units:       NewUnitTable(),
	}
	c.Units[ANY] = width
	for i := range c.Regs {
		c.Regs[i] = regs
	}
	return c
}

// Heterogeneous returns a machine with per-class functional units.
func Heterogeneous(ialu, falu, mem, br, intRegs, fpRegs int) *Config {
	c := &Config{
		Name:  fmt.Sprintf("het%d%d%d%d", ialu, falu, mem, br),
		Units: NewUnitTable(),
	}
	c.Units[IALU] = ialu
	c.Units[FALU] = falu
	c.Units[MEM] = mem
	c.Units[BR] = br
	c.Regs[ir.ClassInt] = intRegs
	c.Regs[ir.ClassFP] = fpRegs
	return c
}

// Clustered returns a clustered homogeneous VLIW: clusters identical
// clusters of width units and regs registers per file each, joined by
// buses inter-cluster copy buses of unit latency.
func Clustered(clusters, width, regs, buses int) *Config {
	c := &Config{
		Name:        fmt.Sprintf("clus%dx%dx%dr", clusters, width, regs),
		Homogeneous: true,
		Units:       NewUnitTable(),
		Clusters:    clusters,
		CopyLatency: 1,
	}
	c.Units[ANY] = width
	c.Units[XFER] = buses
	for i := range c.Regs {
		c.Regs[i] = regs
	}
	return c
}

// ExposedDatapath returns a buffered exposed-datapath machine: a
// homogeneous VLIW whose functional units each hold up to depth results in
// an output buffer until the last consumer reads them.
func ExposedDatapath(width, regs, depth int) *Config {
	c := VLIW(width, regs)
	c.Name = fmt.Sprintf("edp%dx%dr.b%d", width, regs, depth)
	c.BufferDepth = depth
	return c
}

// RealisticLatency is an optional latency model: multiplies and memory take
// longer than simple ALU operations, divisions longer still.
func RealisticLatency(op ir.Op) int {
	switch op {
	case ir.Mul, ir.MulI, ir.FMul, ir.FMulI:
		return 2
	case ir.Div, ir.DivI, ir.Rem, ir.RemI, ir.FDiv, ir.FDivI:
		return 4
	case ir.Load, ir.LoadF, ir.Store, ir.StoreF, ir.SpillLoad, ir.SpillStore:
		return 2
	default:
		return 1
	}
}

// LatencyOf returns the latency of an opcode under this machine.
// Inter-cluster copies take CopyLatency cycles regardless of the latency
// model, which predates them.
func (c *Config) LatencyOf(op ir.Op) int {
	if op == ir.Copy {
		if c.CopyLatency > 0 {
			return c.CopyLatency
		}
		return 1
	}
	if c.Latency == nil {
		return 1
	}
	if l := c.Latency(op); l > 0 {
		return l
	}
	return 1
}

// ClassFor maps an instruction kind to the FU class that executes it.
func (c *Config) ClassFor(k ir.Kind) FUClass {
	if k == ir.KindCopy {
		return XFER
	}
	if c.Homogeneous {
		return ANY
	}
	switch k {
	case ir.KindFArith:
		return FALU
	case ir.KindMem:
		return MEM
	case ir.KindBranch:
		return BR
	default: // const, move, integer ALU, nop
		return IALU
	}
}

// UnitsFor returns how many units can execute instructions of kind k
// (per cluster, on clustered machines).
func (c *Config) UnitsFor(k ir.Kind) int {
	return c.Units.Get(c.ClassFor(k))
}

// TotalUnits returns the machine-wide unit count of a class: per-cluster
// counts are replicated over the clusters; the XFER bus is shared.
func (c *Config) TotalUnits(cl FUClass) int {
	u := c.Units.Get(cl)
	if c.Clusters > 1 && cl != XFER {
		return u * c.Clusters
	}
	return u
}

// NumClusters returns the cluster count, at least 1.
func (c *Config) NumClusters() int {
	if c.Clusters > 1 {
		return c.Clusters
	}
	return 1
}

// BufferCap returns the output-buffer capacity of a class on an
// exposed-datapath machine, 0 when the model is inactive.
func (c *Config) BufferCap(cl FUClass) int {
	if c.BufferDepth <= 0 {
		return 0
	}
	return c.Units.Get(cl) * c.BufferDepth
}

// FUClasses returns the distinct FU classes this machine schedules
// (just ANY for homogeneous machines, plus XFER when a transfer bus
// exists).
func (c *Config) FUClasses() []FUClass {
	if c.Homogeneous {
		out := []FUClass{ANY}
		if c.Units.Get(XFER) > 0 {
			out = append(out, XFER)
		}
		return out
	}
	var out []FUClass
	for cl := IALU; cl < NumFUClasses; cl++ {
		if c.Units.Get(cl) > 0 {
			out = append(out, cl)
		}
	}
	return out
}

// KindsOf returns the instruction kinds executed by FU class cl under this
// machine.
func (c *Config) KindsOf(cl FUClass) []ir.Kind {
	all := []ir.Kind{ir.KindNop, ir.KindConst, ir.KindIArith, ir.KindFArith, ir.KindMem, ir.KindBranch, ir.KindCopy}
	var out []ir.Kind
	for _, k := range all {
		if c.ClassFor(k) == cl {
			out = append(out, k)
		}
	}
	return out
}

// Clone returns an independent copy of the configuration (the latency
// function is shared; it is immutable by convention).
func (c *Config) Clone() *Config {
	cp := *c
	cp.Units = c.Units.Clone()
	return &cp
}

// Validate checks the configuration is usable.
func (c *Config) Validate() error {
	total := 0
	for _, u := range c.Units {
		if u < 0 {
			return fmt.Errorf("machine %s: negative unit count", c.Name)
		}
		total += u
	}
	if total == 0 {
		return fmt.Errorf("machine %s: no functional units", c.Name)
	}
	if !c.Homogeneous {
		// Every FU class an instruction kind can map onto must exist:
		// a heterogeneous machine with, say, zero MEM units can never
		// schedule a load, no matter what the latency table says about it.
		for _, cl := range []FUClass{IALU, FALU, MEM, BR} {
			if c.Units.Get(cl) < 1 {
				return fmt.Errorf("machine %s: heterogeneous config has no %s units; every instruction class needs at least one",
					c.Name, cl)
			}
		}
	}
	for cl, r := range c.Regs {
		if r < 1 {
			return fmt.Errorf("machine %s: register class %s has %d registers; need at least 1",
				c.Name, ir.Class(cl), r)
		}
	}
	if c.Clusters < 0 {
		return fmt.Errorf("machine %s: negative cluster count", c.Name)
	}
	if c.Clusters > 1 {
		if c.Units.Get(XFER) < 1 {
			return fmt.Errorf("machine %s: clustered config needs at least one xfer bus", c.Name)
		}
		if c.Clusters > 255 {
			return fmt.Errorf("machine %s: cluster count %d exceeds 255", c.Name, c.Clusters)
		}
	} else if c.Units.Get(XFER) > 0 {
		return fmt.Errorf("machine %s: xfer units on an unclustered machine", c.Name)
	}
	if c.CopyLatency < 0 {
		return fmt.Errorf("machine %s: negative copy latency", c.Name)
	}
	if c.BufferDepth < 0 {
		return fmt.Errorf("machine %s: negative buffer depth", c.Name)
	}
	if c.BufferDepth > 0 {
		if !c.Homogeneous {
			return fmt.Errorf("machine %s: exposed-datapath buffering requires homogeneous units", c.Name)
		}
		// A binary operation needs both operands buffered simultaneously,
		// so a machine whose total capacity cannot hold two values can
		// never execute one, whatever the schedule.
		if c.BufferCap(ANY) < 2 {
			return fmt.Errorf("machine %s: total buffer capacity %d cannot hold a binary operation's operands",
				c.Name, c.BufferCap(ANY))
		}
	}
	if c.IssueWidth < 0 {
		return fmt.Errorf("machine %s: negative issue width", c.Name)
	}
	if c.Clusters > 1 && c.BufferDepth > 0 {
		return fmt.Errorf("machine %s: clustered and exposed-datapath models cannot combine", c.Name)
	}
	if c.Clusters > 1 && c.IssueWidth > 0 {
		return fmt.Errorf("machine %s: clustered machines take no global issue width", c.Name)
	}
	return nil
}

// String renders a summary like "vliw4x8r: 4×any, 8 int / 8 fp regs".
func (c *Config) String() string {
	var units []string
	for cl := FUClass(0); cl < NumFUClasses; cl++ {
		if c.Units.Get(cl) > 0 {
			units = append(units, fmt.Sprintf("%d×%s", c.Units[cl], cl))
		}
	}
	s := fmt.Sprintf("%s: %s, %d int / %d fp regs",
		c.Name, strings.Join(units, " "), c.Regs[ir.ClassInt], c.Regs[ir.ClassFP])
	if c.Clusters > 1 {
		s += fmt.Sprintf(", %d clusters", c.Clusters)
	}
	if c.BufferDepth > 0 {
		s += fmt.Sprintf(", buffers×%d", c.BufferDepth)
	}
	if c.IssueWidth > 0 {
		s += fmt.Sprintf(", issue %d", c.IssueWidth)
	}
	return s
}
