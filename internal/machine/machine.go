// Package machine describes the target VLIW: how many functional units of
// each class issue per cycle, how many registers each register file holds,
// and per-operation latencies. The paper's machines are non-pipelined with
// homogeneous functional units; heterogeneous unit classes and multi-cycle
// latencies are supported as the natural extension (§5, §6).
package machine

import (
	"fmt"
	"strings"

	"ursa/internal/ir"
)

// FUClass is a functional-unit class.
type FUClass uint8

// Functional-unit classes.
const (
	ANY  FUClass = iota // homogeneous machines: every unit runs anything
	IALU                // integer ALU
	FALU                // floating-point ALU
	MEM                 // load/store unit
	BR                  // branch unit
	numFUClasses
)

// String returns the class mnemonic.
func (c FUClass) String() string {
	switch c {
	case ANY:
		return "any"
	case IALU:
		return "ialu"
	case FALU:
		return "falu"
	case MEM:
		return "mem"
	case BR:
		return "br"
	}
	return fmt.Sprintf("fu(%d)", uint8(c))
}

// Config is a machine description.
type Config struct {
	Name string
	// Homogeneous machines issue any instruction on any of Units[ANY]
	// functional units, the paper's model. Heterogeneous machines issue on
	// class-specific units.
	Homogeneous bool
	// Units holds the functional-unit count per class (index by FUClass).
	// For homogeneous machines only Units[ANY] is meaningful.
	Units [numFUClasses]int
	// Regs holds the register-file size per register class.
	Regs [ir.NumClasses]int
	// Latency gives each opcode's execution time in cycles; nil means unit
	// latency. By default units are not pipelined: a unit is busy for the
	// whole latency of the instruction it executes (the paper's §3.2
	// model).
	Latency func(op ir.Op) int
	// Pipelined units accept a new instruction every cycle while earlier
	// results are still in flight — the §6 future-work direction toward
	// superscalar/pipelined targets. Dependences still wait the full
	// latency; only unit occupancy changes.
	Pipelined bool
}

// OccupancyOf returns how many cycles one instruction keeps its unit busy.
func (c *Config) OccupancyOf(op ir.Op) int {
	if c.Pipelined {
		return 1
	}
	return c.LatencyOf(op)
}

// VLIW returns the paper's machine model: a homogeneous VLIW issuing width
// instructions per cycle with regs registers in each register file, unit
// latencies.
func VLIW(width, regs int) *Config {
	c := &Config{
		Name:        fmt.Sprintf("vliw%dx%dr", width, regs),
		Homogeneous: true,
	}
	c.Units[ANY] = width
	for i := range c.Regs {
		c.Regs[i] = regs
	}
	return c
}

// Heterogeneous returns a machine with per-class functional units.
func Heterogeneous(ialu, falu, mem, br, intRegs, fpRegs int) *Config {
	c := &Config{
		Name: fmt.Sprintf("het%d%d%d%d", ialu, falu, mem, br),
	}
	c.Units[IALU] = ialu
	c.Units[FALU] = falu
	c.Units[MEM] = mem
	c.Units[BR] = br
	c.Regs[ir.ClassInt] = intRegs
	c.Regs[ir.ClassFP] = fpRegs
	return c
}

// RealisticLatency is an optional latency model: multiplies and memory take
// longer than simple ALU operations, divisions longer still.
func RealisticLatency(op ir.Op) int {
	switch op {
	case ir.Mul, ir.MulI, ir.FMul, ir.FMulI:
		return 2
	case ir.Div, ir.DivI, ir.Rem, ir.RemI, ir.FDiv, ir.FDivI:
		return 4
	case ir.Load, ir.LoadF, ir.Store, ir.StoreF, ir.SpillLoad, ir.SpillStore:
		return 2
	default:
		return 1
	}
}

// LatencyOf returns the latency of an opcode under this machine.
func (c *Config) LatencyOf(op ir.Op) int {
	if c.Latency == nil {
		return 1
	}
	if l := c.Latency(op); l > 0 {
		return l
	}
	return 1
}

// ClassFor maps an instruction kind to the FU class that executes it.
func (c *Config) ClassFor(k ir.Kind) FUClass {
	if c.Homogeneous {
		return ANY
	}
	switch k {
	case ir.KindFArith:
		return FALU
	case ir.KindMem:
		return MEM
	case ir.KindBranch:
		return BR
	default: // const, move, integer ALU, nop
		return IALU
	}
}

// UnitsFor returns how many units can execute instructions of kind k.
func (c *Config) UnitsFor(k ir.Kind) int {
	return c.Units[c.ClassFor(k)]
}

// FUClasses returns the distinct FU classes this machine schedules
// (just ANY for homogeneous machines).
func (c *Config) FUClasses() []FUClass {
	if c.Homogeneous {
		return []FUClass{ANY}
	}
	var out []FUClass
	for cl := IALU; cl < numFUClasses; cl++ {
		if c.Units[cl] > 0 {
			out = append(out, cl)
		}
	}
	return out
}

// KindsOf returns the instruction kinds executed by FU class cl under this
// machine.
func (c *Config) KindsOf(cl FUClass) []ir.Kind {
	all := []ir.Kind{ir.KindNop, ir.KindConst, ir.KindIArith, ir.KindFArith, ir.KindMem, ir.KindBranch}
	var out []ir.Kind
	for _, k := range all {
		if c.ClassFor(k) == cl {
			out = append(out, k)
		}
	}
	return out
}

// Validate checks the configuration is usable.
func (c *Config) Validate() error {
	total := 0
	for _, u := range c.Units {
		if u < 0 {
			return fmt.Errorf("machine %s: negative unit count", c.Name)
		}
		total += u
	}
	if total == 0 {
		return fmt.Errorf("machine %s: no functional units", c.Name)
	}
	for cl, r := range c.Regs {
		if r < 1 {
			return fmt.Errorf("machine %s: register class %s has %d registers; need at least 1",
				c.Name, ir.Class(cl), r)
		}
	}
	return nil
}

// String renders a summary like "vliw4x8r: 4×any, 8 int / 8 fp regs".
func (c *Config) String() string {
	var units []string
	for cl := FUClass(0); cl < numFUClasses; cl++ {
		if c.Units[cl] > 0 {
			units = append(units, fmt.Sprintf("%d×%s", c.Units[cl], cl))
		}
	}
	return fmt.Sprintf("%s: %s, %d int / %d fp regs",
		c.Name, strings.Join(units, " "), c.Regs[ir.ClassInt], c.Regs[ir.ClassFP])
}
