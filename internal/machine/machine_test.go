package machine

import (
	"strings"
	"testing"

	"ursa/internal/ir"
)

func TestVLIWPreset(t *testing.T) {
	m := VLIW(4, 8)
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !m.Homogeneous || m.Units[ANY] != 4 {
		t.Errorf("VLIW(4,8) units = %v", m.Units)
	}
	if m.Regs[ir.ClassInt] != 8 || m.Regs[ir.ClassFP] != 8 {
		t.Errorf("regs = %v", m.Regs)
	}
	if m.ClassFor(ir.KindFArith) != ANY {
		t.Error("homogeneous machine must map every kind to ANY")
	}
	if got := m.UnitsFor(ir.KindMem); got != 4 {
		t.Errorf("UnitsFor(mem) = %d", got)
	}
	if cls := m.FUClasses(); len(cls) != 1 || cls[0] != ANY {
		t.Errorf("FUClasses = %v", cls)
	}
}

func TestHeterogeneousPreset(t *testing.T) {
	m := Heterogeneous(2, 1, 1, 1, 16, 8)
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if m.ClassFor(ir.KindFArith) != FALU || m.ClassFor(ir.KindMem) != MEM ||
		m.ClassFor(ir.KindBranch) != BR || m.ClassFor(ir.KindIArith) != IALU ||
		m.ClassFor(ir.KindConst) != IALU {
		t.Error("kind-to-class mapping wrong")
	}
	if got := m.UnitsFor(ir.KindIArith); got != 2 {
		t.Errorf("UnitsFor(ialu) = %d", got)
	}
	if len(m.FUClasses()) != 4 {
		t.Errorf("FUClasses = %v", m.FUClasses())
	}
	kinds := m.KindsOf(IALU)
	if len(kinds) != 4 { // nop, const, ialu and... nop,const,iarith = 3? includes KindNop
		// KindsOf(IALU) = nop, const, iarith.
		if len(kinds) != 3 {
			t.Errorf("KindsOf(IALU) = %v", kinds)
		}
	}
}

func TestLatencyModels(t *testing.T) {
	m := VLIW(2, 8)
	if m.LatencyOf(ir.Div) != 1 {
		t.Error("default latency must be 1")
	}
	m.Latency = RealisticLatency
	if m.LatencyOf(ir.Div) != 4 || m.LatencyOf(ir.Load) != 2 || m.LatencyOf(ir.Add) != 1 {
		t.Error("realistic latencies wrong")
	}
	m.Latency = func(ir.Op) int { return 0 }
	if m.LatencyOf(ir.Add) != 1 {
		t.Error("non-positive latency must clamp to 1")
	}
}

func TestValidateRejects(t *testing.T) {
	m := VLIW(0, 8)
	if err := m.Validate(); err == nil {
		t.Error("0 units accepted")
	}
	m = VLIW(2, 0)
	if err := m.Validate(); err == nil {
		t.Error("0 registers accepted")
	}
}

// Regression: a heterogeneous config with zero units in a referenced class
// used to validate (total units > 0 was the only check), then wedge the
// scheduler on the first load. Validate must reject it up front.
func TestValidateRejectsHetMissingClass(t *testing.T) {
	for _, cl := range []FUClass{IALU, FALU, MEM, BR} {
		m := Heterogeneous(2, 1, 1, 1, 8, 8)
		m.Units[cl] = 0
		if err := m.Validate(); err == nil {
			t.Errorf("heterogeneous config with no %s units accepted", cl)
		} else if !strings.Contains(err.Error(), cl.String()) {
			t.Errorf("error %q does not name the missing class %s", err, cl)
		}
	}
}

func TestClusteredPreset(t *testing.T) {
	m := Clustered(2, 2, 4, 1)
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if m.NumClusters() != 2 || m.Units[ANY] != 2 || m.Units[XFER] != 1 {
		t.Errorf("Clustered(2,2,4,1) = %+v", m)
	}
	if got := m.TotalUnits(ANY); got != 4 {
		t.Errorf("TotalUnits(ANY) = %d, want per-cluster count replicated", got)
	}
	if got := m.TotalUnits(XFER); got != 1 {
		t.Errorf("TotalUnits(XFER) = %d, want machine-wide bus count", got)
	}
	if m.ClassFor(ir.KindCopy) != XFER {
		t.Error("copies must execute on the transfer bus")
	}
	if m.LatencyOf(ir.Copy) != 1 {
		t.Errorf("LatencyOf(Copy) = %d", m.LatencyOf(ir.Copy))
	}
	if cls := m.FUClasses(); len(cls) != 2 || cls[0] != ANY || cls[1] != XFER {
		t.Errorf("FUClasses = %v", cls)
	}
	// Bus-less or single-cluster-with-bus configs are malformed.
	bad := Clustered(2, 2, 4, 0)
	if err := bad.Validate(); err == nil {
		t.Error("clustered config without a transfer bus accepted")
	}
	bad = Clustered(1, 2, 4, 1)
	if err := bad.Validate(); err == nil {
		t.Error("xfer units on an unclustered machine accepted")
	}
}

func TestExposedDatapathPreset(t *testing.T) {
	m := ExposedDatapath(4, 8, 2)
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if m.BufferCap(ANY) != 8 {
		t.Errorf("BufferCap(ANY) = %d, want units×depth", m.BufferCap(ANY))
	}
	if VLIW(4, 8).BufferCap(ANY) != 0 {
		t.Error("BufferCap must be 0 when the model is inactive")
	}
	bad := Clustered(2, 2, 4, 1)
	bad.BufferDepth = 1
	if err := bad.Validate(); err == nil {
		t.Error("clustered+EDP combination accepted")
	}
}

func TestIssueWidth(t *testing.T) {
	m := Heterogeneous(6, 2, 3, 1, 16, 16)
	m.IssueWidth = 12
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	m.IssueWidth = -1
	if err := m.Validate(); err == nil {
		t.Error("negative issue width accepted")
	}
}

func TestClone(t *testing.T) {
	m := Clustered(2, 2, 4, 1)
	c := m.Clone()
	c.Units[ANY] = 99
	c.Clusters = 7
	if m.Units[ANY] != 2 || m.Clusters != 2 {
		t.Error("Clone shares mutable state with the original")
	}
}

func TestString(t *testing.T) {
	s := VLIW(4, 8).String()
	for _, want := range []string{"vliw4x8r", "4×any", "8 int"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
