package machine

import (
	"strings"
	"testing"

	"ursa/internal/ir"
)

func TestVLIWPreset(t *testing.T) {
	m := VLIW(4, 8)
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !m.Homogeneous || m.Units[ANY] != 4 {
		t.Errorf("VLIW(4,8) units = %v", m.Units)
	}
	if m.Regs[ir.ClassInt] != 8 || m.Regs[ir.ClassFP] != 8 {
		t.Errorf("regs = %v", m.Regs)
	}
	if m.ClassFor(ir.KindFArith) != ANY {
		t.Error("homogeneous machine must map every kind to ANY")
	}
	if got := m.UnitsFor(ir.KindMem); got != 4 {
		t.Errorf("UnitsFor(mem) = %d", got)
	}
	if cls := m.FUClasses(); len(cls) != 1 || cls[0] != ANY {
		t.Errorf("FUClasses = %v", cls)
	}
}

func TestHeterogeneousPreset(t *testing.T) {
	m := Heterogeneous(2, 1, 1, 1, 16, 8)
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if m.ClassFor(ir.KindFArith) != FALU || m.ClassFor(ir.KindMem) != MEM ||
		m.ClassFor(ir.KindBranch) != BR || m.ClassFor(ir.KindIArith) != IALU ||
		m.ClassFor(ir.KindConst) != IALU {
		t.Error("kind-to-class mapping wrong")
	}
	if got := m.UnitsFor(ir.KindIArith); got != 2 {
		t.Errorf("UnitsFor(ialu) = %d", got)
	}
	if len(m.FUClasses()) != 4 {
		t.Errorf("FUClasses = %v", m.FUClasses())
	}
	kinds := m.KindsOf(IALU)
	if len(kinds) != 4 { // nop, const, ialu and... nop,const,iarith = 3? includes KindNop
		// KindsOf(IALU) = nop, const, iarith.
		if len(kinds) != 3 {
			t.Errorf("KindsOf(IALU) = %v", kinds)
		}
	}
}

func TestLatencyModels(t *testing.T) {
	m := VLIW(2, 8)
	if m.LatencyOf(ir.Div) != 1 {
		t.Error("default latency must be 1")
	}
	m.Latency = RealisticLatency
	if m.LatencyOf(ir.Div) != 4 || m.LatencyOf(ir.Load) != 2 || m.LatencyOf(ir.Add) != 1 {
		t.Error("realistic latencies wrong")
	}
	m.Latency = func(ir.Op) int { return 0 }
	if m.LatencyOf(ir.Add) != 1 {
		t.Error("non-positive latency must clamp to 1")
	}
}

func TestValidateRejects(t *testing.T) {
	m := VLIW(0, 8)
	if err := m.Validate(); err == nil {
		t.Error("0 units accepted")
	}
	m = VLIW(2, 0)
	if err := m.Validate(); err == nil {
		t.Error("0 registers accepted")
	}
}

func TestString(t *testing.T) {
	s := VLIW(4, 8).String()
	for _, want := range []string{"vliw4x8r", "4×any", "8 int"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
