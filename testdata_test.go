package ursa_test

import (
	"os"
	"path/filepath"
	"testing"

	"ursa"
)

// TestTestdataCorpus compiles the checked-in example programs (the ones the
// README and cmd/ursac documentation reference) through the URSA pipeline.
func TestTestdataCorpus(t *testing.T) {
	m := ursa.VLIW(4, 8)
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	compiled := 0
	for _, e := range entries {
		name := e.Name()
		ext := filepath.Ext(name)
		if ext != ".tac" && ext != ".k" {
			continue
		}
		src, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		var f *ursa.Func
		if ext == ".k" {
			f, err = ursa.ParseKernel(string(src), 0)
		} else {
			f, err = ursa.ParseIR(string(src))
		}
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, _, err := ursa.CompileFunc(f, m, ursa.URSA); err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		compiled++
	}
	if compiled < 3 {
		t.Fatalf("only %d corpus programs compiled", compiled)
	}
}
