// Command ursagw is the URSA cluster gateway: a router that
// consistent-hashes every compile's canonical cache key
// (pipeline.CacheKey) across a fleet of ursad shards, so each key is
// compiled by exactly one shard and every repeat — from any client — is
// that shard's cache hit.
//
// Usage:
//
//	ursagw -backends http://h1:8347,http://h2:8347 [-addr :8340]
//	       [-vnodes 128] [-probe 1s] [-eject-after 2] [-spill-depth 8]
//	       [-hedge 150ms] [-timeout 120s] [-peer-timeout 2s] [-quiet]
//
// The gateway serves the same client-facing endpoints as ursad —
// POST /v1/compile, POST /v1/batch, GET /v1/machines,
// GET/PUT /v1/cache/{key} — plus its own /healthz and /metrics. Shards
// are health-checked (ejected from the ring on failure, readmitted with
// backoff), an overloaded owner spills keys to its ring successor, slow
// owners are hedged against the fleet's peer cache tier, and concurrent
// identical requests coalesce into one upstream compile. 429/Retry-After
// backpressure from a shard is forwarded to the client untouched.
//
// See docs/CLUSTER.md for topology, policy, and the metrics table.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ursa/internal/cluster"
)

func main() {
	var (
		addr        = flag.String("addr", ":8340", "listen address")
		backends    = flag.String("backends", "", "comma-separated ursad shard base URLs (required)")
		vnodes      = flag.Int("vnodes", 0, "virtual nodes per shard on the hash ring (0: 128)")
		probe       = flag.Duration("probe", 0, "health probe interval (0: 1s)")
		ejectAfter  = flag.Int("eject-after", 0, "consecutive probe failures before a shard leaves the ring (0: 2)")
		spillDepth  = flag.Int64("spill-depth", 0, "owner admission-queue depth that spills keys to the next shard (0: 8, negative: off)")
		hedge       = flag.Duration("hedge", 0, "delay before hedging a slow compile against the peer cache tier (0: 150ms, negative: off)")
		timeout     = flag.Duration("timeout", 0, "forwarded request deadline (0: 120s)")
		peerTimeout = flag.Duration("peer-timeout", 0, "hedged cache fetch deadline (0: 2s)")
		quiet       = flag.Bool("quiet", false, "suppress operational log lines")
	)
	flag.Parse()

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	var shards []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			shards = append(shards, b)
		}
	}
	router, err := cluster.New(cluster.Config{
		Backends:       shards,
		VNodes:         *vnodes,
		ProbeInterval:  *probe,
		EjectAfter:     *ejectAfter,
		SpillDepth:     *spillDepth,
		HedgeDelay:     *hedge,
		RequestTimeout: *timeout,
		PeerTimeout:    *peerTimeout,
		Logf:           logf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ursagw: %v\n", err)
		os.Exit(1)
	}
	defer router.Close()

	hs := &http.Server{
		Addr:              *addr,
		Handler:           router.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logf("ursagw: routing %d shards on %s", len(shards), *addr)
	start := time.Now()
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "ursagw: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "ursagw: drain: %v\n", err)
		os.Exit(1)
	}
	logf("ursagw: clean exit after %s", time.Since(start).Round(time.Millisecond))
}
