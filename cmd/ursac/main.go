// Command ursac is the compiler driver: it reads a program — textual
// three-address IR (.tac) or the kernel language (.k) — compiles it with a
// selected pipeline onto a configurable VLIW machine, and prints the
// resulting instruction words, allocation report, and (optionally) the
// result of executing the code on the simulator.
//
// Usage:
//
//	ursac -pipeline ursa -width 4 -regs 8 [-j N] [-kernel] [-unroll N]
//	      [-loop] [-cache-dir DIR] [-run] [-dot] file
//
// With no file, a built-in demo (the paper's Figure 2 example) compiles.
// With -loop, canonical counted loops are software-pipelined by iterative
// modulo scheduling before compilation; each loop's achieved initiation
// interval is reported against its resMII/recMII lower bounds, and with
// -run on a kernel-language input the pipelined cycle count is compared
// against a straight unroll sweep.
// With -cache-dir, compile results persist in a content-addressed store:
// a rerun with identical inputs replays the emitted listing (stdout is
// byte-identical) and reports the serving tier on stderr ("# cache: disk").
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"syscall"

	"ursa"
	"ursa/internal/server"
)

func main() {
	var (
		pipelineName = flag.String("pipeline", "ursa", "pipeline: ursa, prepass, postpass, integrated-list")
		width        = flag.Int("width", 4, "functional units (homogeneous)")
		regs         = flag.Int("regs", 8, "registers per register file")
		machineFlag  = flag.String("machine", "", "target: a preset name (see -machine list), a machine-spec JSON file, or inline JSON starting with '{'; overrides -width/-regs")
		kernel       = flag.Bool("kernel", false, "input is kernel language (default: .k files)")
		unroll       = flag.Int("unroll", 0, "unroll factor for kernel-language for loops")
		loop         = flag.Bool("loop", false, "software-pipeline counted loops (modulo scheduling) before compiling")
		run          = flag.Bool("run", false, "execute the compiled code on the simulator")
		dot          = flag.Bool("dot", false, "print the dependence DAG (first block) in DOT instead of compiling")
		trace        = flag.Bool("trace", false, "print the allocator's transformation trace")
		realistic    = flag.Bool("latency", false, "use realistic multi-cycle latencies")
		optimize     = flag.Bool("O", false, "run scalar optimizations (fold/copy/CSE/DCE) before compiling")
		jobs         = flag.Int("j", 0, "compile blocks with N parallel workers (0: all cores, 1: sequential)")
		cacheDir     = flag.String("cache-dir", "", "persistent compile-result cache directory; warm keys skip the allocator (ignored with -run)")
		listen       = flag.String("listen", "", "serve the compile API on this address instead of compiling (same mux as ursad)")
		pprofOn      = flag.Bool("pprof", false, "with -listen: mount net/http/pprof under /debug/pprof/")
		contention   = flag.Int("pprof-contention", 0, "sample mutex contention at rate N and block events at N ns (0: off)")
	)
	flag.Parse()

	if *contention > 0 {
		runtime.SetMutexProfileFraction(*contention)
		runtime.SetBlockProfileRate(*contention)
	}

	if *listen != "" {
		// Share ursad's entry path: the same server mux, started from the
		// compiler binary, so the serving layer is testable wherever ursac
		// is already deployed.
		var artifacts *ursa.ResultCache
		if *cacheDir != "" {
			var err error
			if artifacts, err = ursa.OpenResultCache(*cacheDir, 0, 0, ""); err != nil {
				fatalf("cache: %v", err)
			}
		}
		srv := server.New(server.Config{Logf: log.Printf, EnablePprof: *pprofOn, Artifacts: artifacts})
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if err := srv.ListenAndServe(ctx, *listen); err != nil {
			fatalf("serve: %v", err)
		}
		return
	}

	if *machineFlag == "list" {
		for _, p := range ursa.Presets() {
			fmt.Printf("%-14s %s\n", p.Name, p.Description)
		}
		return
	}

	method, ok := parseMethod(*pipelineName)
	if !ok {
		fatalf("unknown pipeline %q", *pipelineName)
	}
	m, err := resolveMachine(*machineFlag, *width, *regs, *realistic)
	if err != nil {
		fatalf("%v", err)
	}

	f, kernelSrc, err := loadInput(flag.Arg(0), *kernel, *unroll)
	if err != nil {
		fatalf("%v", err)
	}
	if *optimize {
		st := ursa.Optimize(f)
		fmt.Fprintf(os.Stderr, "# optimizer: %s\n", st.String())
	}

	if *dot {
		g, err := ursa.BuildDAG(f.Blocks[0])
		if err != nil {
			fatalf("building DAG: %v", err)
		}
		fmt.Print(ursa.Dot(g, f.Name))
		return
	}

	if *trace && method == ursa.URSA {
		// Show the allocation narrative for the first block before the
		// full compilation.
		g, err := ursa.BuildDAG(f.Blocks[0])
		if err != nil {
			fatalf("building DAG: %v", err)
		}
		if _, err := ursa.AllocateOpts(g, m, ursa.AllocOptions{Trace: os.Stderr}); err != nil {
			fatalf("allocate: %v", err)
		}
	}

	workers := *jobs
	if workers == 0 {
		workers = -1 // pipeline convention: negative means GOMAXPROCS
	}
	opts := ursa.CompileOptions{Workers: workers}
	if *cacheDir != "" && !*run {
		// A cached artifact stores listings, not executable code, so -run
		// always compiles fresh.
		rc, err := ursa.OpenResultCache(*cacheDir, 0, 0, "")
		if err != nil {
			fatalf("cache: %v", err)
		}
		opts.Results = rc
	}
	var (
		cf      *ursa.CachedFunc
		stats   *ursa.Stats
		loopRep *ursa.LoopResult
	)
	if *loop {
		cf, stats, loopRep, err = ursa.CompileLoopFuncCached(f, m, method, opts)
	} else {
		cf, stats, err = ursa.CompileFuncCached(f, m, method, opts)
	}
	if err != nil {
		fatalf("compile: %v", err)
	}
	if opts.Results != nil {
		// On stderr so warm and cold runs stay byte-identical on stdout.
		fmt.Fprintf(os.Stderr, "# cache: %s\n", cf.ServedBy())
	}
	fmt.Printf("# %s: %s pipeline on %s\n", f.Name, method, m)
	fmt.Print(cf.Listing())
	fmt.Printf("# words=%d spill-ops=%d regs-used=%d int / %d fp\n",
		stats.Words, stats.SpillOps, stats.RegsUsed[0], stats.RegsUsed[1])
	if method == ursa.URSA {
		fmt.Printf("# ursa: %d transformations, fits=%v\n", stats.URSATransforms, stats.URSAFits)
	}
	if loopRep != nil {
		for _, l := range loopRep.Loops {
			fmt.Printf("# loop %s: II=%d vs MII=%d (res=%d rec=%d), unroll=%d, kernel=%d words, achieved II=%d\n",
				l.HeadLabel, l.II, l.MII, l.ResMII, l.RecMII, l.Unroll, l.KernelWords, l.AchievedII)
		}
	}

	if *run {
		res, err := cf.Prog.Run(ursa.NewState(), 10_000_000)
		if err != nil {
			fatalf("run: %v", err)
		}
		fmt.Printf("# executed: %d cycles, %d instructions (%.2f ipc), %d spill ops\n",
			res.Cycles, res.Issued, float64(res.Issued)/float64(res.Cycles), res.SpillOps)
		printMem(res.State)
		if *loop && kernelSrc != "" {
			sweepBaseline(kernelSrc, m, method, res.Cycles)
		}
	}
}

// sweepBaseline compiles the kernel source without pipelining at unroll
// factors 1..8 on an empty initial state and prints each cycle count next
// to the modulo-scheduled one, so -loop output shows what the transform
// bought over plain unrolling.
func sweepBaseline(src string, m *ursa.Machine, method ursa.Method, loopCycles int) {
	fmt.Printf("# unroll-sweep baseline (straight %s pipeline):\n", method)
	best := 0
	for _, u := range []int{1, 2, 4, 8} {
		uf, err := ursa.ParseKernel(src, u)
		if err != nil {
			continue
		}
		fp, _, err := ursa.CompileFunc(uf, m, method)
		if err != nil {
			fmt.Printf("#   unroll=%d: compile failed (%v)\n", u, err)
			continue
		}
		res, err := fp.Run(ursa.NewState(), 10_000_000)
		if err != nil {
			fmt.Printf("#   unroll=%d: run failed (%v)\n", u, err)
			continue
		}
		fmt.Printf("#   unroll=%d: %d cycles\n", u, res.Cycles)
		if best == 0 || res.Cycles < best {
			best = res.Cycles
		}
	}
	if best > 0 {
		fmt.Printf("# modulo-scheduled: %d cycles vs best sweep %d (%.2fx)\n",
			loopCycles, best, float64(best)/float64(loopCycles))
	}
}

// printMem dumps the final non-spill memory cells in sorted order.
func printMem(st *ursa.State) {
	type cell struct {
		addr ursa.Addr
		val  int64
	}
	var cells []cell
	for a, w := range st.Mem {
		if len(a.Sym) >= 5 && a.Sym[:5] == "spill" {
			continue
		}
		cells = append(cells, cell{a, w.Int()})
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].addr.Sym != cells[j].addr.Sym {
			return cells[i].addr.Sym < cells[j].addr.Sym
		}
		return cells[i].addr.Off < cells[j].addr.Off
	})
	for _, c := range cells {
		fmt.Printf("# mem %s[%d] = %d\n", c.addr.Sym, c.addr.Off, c.val)
	}
}

// resolveMachine turns the -machine flag into a configuration: empty means
// the classic -width/-regs homogeneous VLIW, "{"-prefixed text is an inline
// JSON machine spec, an existing file is read as a JSON spec, and anything
// else must be a preset name from the target catalog. -latency composes
// only with the flag-built machine; presets and specs carry their own
// latency model.
func resolveMachine(sel string, width, regs int, realistic bool) (*ursa.Machine, error) {
	if sel == "" {
		m := ursa.VLIW(width, regs)
		if realistic {
			m.Latency = ursa.RealisticLatency
		}
		return m, nil
	}
	if realistic {
		return nil, fmt.Errorf("-latency conflicts with -machine: the latency model belongs to the preset or spec")
	}
	if len(sel) > 0 && sel[0] == '{' {
		return ursa.ParseMachineSpec([]byte(sel))
	}
	if data, err := os.ReadFile(sel); err == nil {
		return ursa.ParseMachineSpec(data)
	}
	if p := ursa.PresetByName(sel); p != nil {
		return p.Config, nil
	}
	var names []string
	for _, p := range ursa.Presets() {
		names = append(names, p.Name)
	}
	return nil, fmt.Errorf("unknown machine %q (presets: %v; or pass a JSON spec file or inline JSON)", sel, names)
}

func parseMethod(name string) (ursa.Method, bool) {
	for _, m := range ursa.Methods {
		if m.String() == name {
			return m, true
		}
	}
	return 0, false
}

// loadInput reads and parses the program; for kernel-language inputs it
// also returns the source text so -loop can rerun the unroll sweep.
func loadInput(path string, kernel bool, unroll int) (*ursa.Func, string, error) {
	if path == "" {
		fmt.Fprintln(os.Stderr, "# no input file: compiling the paper's Figure 2 example")
		return ursa.PaperExample(true), "", nil
	}
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	if kernel || hasSuffix(path, ".k") {
		f, err := ursa.ParseKernel(string(src), unroll)
		return f, string(src), err
	}
	f, err := ursa.ParseIR(string(src))
	return f, "", err
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ursac: "+format+"\n", args...)
	os.Exit(1)
}
