// Command dagviz renders dependence DAGs in Graphviz DOT: the raw program
// DAG, the DAG after URSA's allocation (showing the added sequence edges
// and spill nodes), or both side by side in one digraph file each.
//
// Usage:
//
//	dagviz [-kernel] [-width N -regs N] [-after] file > out.dot
//
// With no file the paper's Figure 2 example is rendered.
package main

import (
	"flag"
	"fmt"
	"os"

	"ursa"
)

func main() {
	var (
		kernel = flag.Bool("kernel", false, "input is kernel language")
		width  = flag.Int("width", 2, "functional units (for -after)")
		regs   = flag.Int("regs", 3, "registers (for -after)")
		after  = flag.Bool("after", false, "render the DAG after URSA's transformations")
		block  = flag.Int("block", 0, "block index to render")
		show   = flag.String("show", "dag", "what to render: dag, reuse-fu, reuse-reg")
	)
	flag.Parse()

	var f *ursa.Func
	var err error
	switch {
	case flag.NArg() == 0:
		f = ursa.PaperExample(false)
	default:
		var src []byte
		src, err = os.ReadFile(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		if *kernel {
			f, err = ursa.ParseKernel(string(src), 0)
		} else {
			f, err = ursa.ParseIR(string(src))
		}
		if err != nil {
			fatalf("%v", err)
		}
	}
	if *block < 0 || *block >= len(f.Blocks) {
		fatalf("block %d out of range (function has %d)", *block, len(f.Blocks))
	}
	g, err := ursa.BuildDAG(f.Blocks[*block])
	if err != nil {
		fatalf("building DAG: %v", err)
	}
	title := f.Name
	if *after {
		m := ursa.VLIW(*width, *regs)
		rep, err := ursa.Allocate(g, m)
		if err != nil {
			fatalf("allocate: %v", err)
		}
		title = fmt.Sprintf("%s after URSA on %s (fits=%v)", f.Name, m.Name, rep.Fits)
	}
	switch *show {
	case "dag":
		fmt.Print(ursa.Dot(g, title))
	case "reuse-fu":
		fmt.Print(ursa.ReuseDotFU(g, title+" (Reuse_FU)"))
	case "reuse-reg":
		fmt.Print(ursa.ReuseDotReg(g, title+" (Reuse_Reg)"))
	default:
		fatalf("unknown -show %q (want dag, reuse-fu, reuse-reg)", *show)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dagviz: "+format+"\n", args...)
	os.Exit(1)
}
