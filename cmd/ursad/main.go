// Command ursad is the URSA compile server: a long-lived HTTP/JSON daemon
// exposing the full compilation pipeline with batching, bounded-queue
// backpressure, a process-wide measurement cache, and Prometheus metrics.
//
// Usage:
//
//	ursad [-addr :8347] [-concurrency N] [-queue N] [-timeout 60s]
//	      [-max-body 4194304] [-drain 30s] [-quiet] [-pprof]
//	      [-pprof-contention N]
//	      [-cache-dir DIR] [-cache-mem N] [-cache-disk N]
//	      [-peer URL] [-peer-timeout 2s]
//
// Endpoints:
//
//	POST /v1/compile     compile (and optionally run) one function
//	POST /v1/batch       fan a set of jobs over the parallel driver
//	GET  /v1/machines    list the machine presets
//	GET  /v1/cache/{key} peer cache protocol (GET/PUT framed artifacts)
//	GET  /healthz        liveness, drain state, cache snapshots
//	GET  /metrics        Prometheus metrics
//
// Any of -cache-dir, -cache-mem, or -peer enables the tiered artifact
// cache (memory → disk → peer): compile results are replayed from the
// fastest tier that holds them instead of re-running the allocator, and
// two daemons pointed at each other via -peer share artifacts across the
// fleet. See docs/CACHE.md.
//
// The daemon drains gracefully on SIGINT/SIGTERM: it stops accepting
// connections, finishes in-flight requests (bounded by -drain), and exits
// 0. See docs/SERVER.md for the wire schema and tuning guidance.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"ursa"
	"ursa/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8347", "listen address")
		concurrency = flag.Int("concurrency", 0, "max concurrent compiles (0: GOMAXPROCS)")
		queue       = flag.Int("queue", 0, "admission queue depth beyond -concurrency (0: 64); overflow sheds 429")
		timeout     = flag.Duration("timeout", 0, "per-request compile deadline (0: 60s)")
		maxBody     = flag.Int64("max-body", 0, "request body size cap in bytes (0: 4MiB)")
		drain       = flag.Duration("drain", 0, "graceful shutdown budget (0: 30s)")
		quiet       = flag.Bool("quiet", false, "suppress operational log lines")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		contention  = flag.Int("pprof-contention", 0, "with -pprof: sample mutex contention at rate N and block events at N ns (0: off)")
		cacheDir    = flag.String("cache-dir", "", "artifact cache directory (persistent disk tier); empty: no disk tier")
		cacheMem    = flag.Int64("cache-mem", 0, "artifact cache memory-tier byte budget; enables caching even without -cache-dir (0 with -cache-dir: 64MiB)")
		cacheDisk   = flag.Int64("cache-disk", 0, "artifact cache disk-tier byte budget; older artifacts evict past it (0: 1GiB)")
		peerURL     = flag.String("peer", "", "peer ursad base URL (e.g. http://ursad-2:8347) consulted on local cache misses")
		peerTimeout = flag.Duration("peer-timeout", 0, "peer cache round-trip deadline (0: 2s); past it the daemon compiles locally")
	)
	flag.Parse()

	if *contention > 0 {
		// Off by default: both profiles tax every mutex/block event. With
		// -pprof the samples land under /debug/pprof/{mutex,block}.
		runtime.SetMutexProfileFraction(*contention)
		runtime.SetBlockProfileRate(*contention)
	}

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	var artifacts *ursa.ResultCache
	if *cacheDir != "" || *cacheMem > 0 || *peerURL != "" {
		var err error
		artifacts, err = ursa.OpenResultCacheConfig(ursa.CacheConfig{
			Dir:         *cacheDir,
			MemBudget:   *cacheMem,
			DiskBudget:  *cacheDisk,
			PeerURL:     *peerURL,
			PeerTimeout: *peerTimeout,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ursad: cache: %v\n", err)
			os.Exit(1)
		}
		switch {
		case *cacheDir != "" && *peerURL != "":
			logf("ursad: artifact cache on (memory + disk %s + peer %s)", *cacheDir, *peerURL)
		case *cacheDir != "":
			logf("ursad: artifact cache on (memory + disk %s)", *cacheDir)
		case *peerURL != "":
			logf("ursad: artifact cache on (memory + peer %s)", *peerURL)
		default:
			logf("ursad: artifact cache on (memory only)")
		}
	}
	srv := server.New(server.Config{
		MaxConcurrent:  *concurrency,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
		DrainTimeout:   *drain,
		Artifacts:      artifacts,
		Logf:           logf,
		EnablePprof:    *pprofOn,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	start := time.Now()
	if err := srv.ListenAndServe(ctx, *addr); err != nil {
		fmt.Fprintf(os.Stderr, "ursad: %v\n", err)
		os.Exit(1)
	}
	logf("ursad: clean exit after %s", time.Since(start).Round(time.Millisecond))
}
