// Command ursad is the URSA compile server: a long-lived HTTP/JSON daemon
// exposing the full compilation pipeline with batching, bounded-queue
// backpressure, a process-wide measurement cache, and Prometheus metrics.
//
// Usage:
//
//	ursad [-addr :8347] [-concurrency N] [-queue N] [-timeout 60s]
//	      [-max-body 4194304] [-drain 30s] [-quiet] [-pprof]
//
// Endpoints:
//
//	POST /v1/compile   compile (and optionally run) one function
//	POST /v1/batch     fan a set of jobs over the parallel driver
//	GET  /v1/machines  list the machine presets
//	GET  /healthz      liveness and drain state
//	GET  /metrics      Prometheus metrics
//
// The daemon drains gracefully on SIGINT/SIGTERM: it stops accepting
// connections, finishes in-flight requests (bounded by -drain), and exits
// 0. See docs/SERVER.md for the wire schema and tuning guidance.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ursa/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8347", "listen address")
		concurrency = flag.Int("concurrency", 0, "max concurrent compiles (0: GOMAXPROCS)")
		queue       = flag.Int("queue", 0, "admission queue depth beyond -concurrency (0: 64); overflow sheds 429")
		timeout     = flag.Duration("timeout", 0, "per-request compile deadline (0: 60s)")
		maxBody     = flag.Int64("max-body", 0, "request body size cap in bytes (0: 4MiB)")
		drain       = flag.Duration("drain", 0, "graceful shutdown budget (0: 30s)")
		quiet       = flag.Bool("quiet", false, "suppress operational log lines")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	srv := server.New(server.Config{
		MaxConcurrent:  *concurrency,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
		DrainTimeout:   *drain,
		Logf:           logf,
		EnablePprof:    *pprofOn,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	start := time.Now()
	if err := srv.ListenAndServe(ctx, *addr); err != nil {
		fmt.Fprintf(os.Stderr, "ursad: %v\n", err)
		os.Exit(1)
	}
	logf("ursad: clean exit after %s", time.Since(start).Round(time.Millisecond))
}
