// Command ursabench regenerates every table and figure of the evaluation
// (see DESIGN.md's experiment index and EXPERIMENTS.md for the recorded
// outputs). Each experiment recomputes its results from scratch: the paper
// figures are checked exactly, and the constructed tables compare URSA
// against the phase-ordered baselines.
//
// Usage:
//
//	ursabench                        # run everything
//	ursabench -j 8                   # fan each experiment's jobs over 8 workers
//	ursabench T1 T2                  # run selected experiments
//	ursabench -list                  # list experiment ids
//	ursabench -benchjson BENCH_core.json
//	                                 # run the reduction-loop benchmarks
//	                                 # instead and write timings as JSON
//	ursabench -benchjson /tmp/now.json -baseline BENCH_core.json
//	                                 # ...then gate against the committed
//	                                 # baseline: exit 1 on any >15% ns/op
//	                                 # regression (-maxregress to adjust)
//	ursabench -compare /tmp/now.json -baseline BENCH_core.json
//	                                 # gate a previous -benchjson run
//	                                 # without re-running the suite
//
// Tables go to stdout and are byte-identical at every -j setting; timing
// lines go to stderr.
//
// -benchjson runs internal/bench's suite (BenchmarkPickBest,
// BenchmarkReduceLarge; full vs incremental modes) through
// testing.Benchmark and writes one {name, ns/op, allocs/op, bytes/op}
// object per benchmark — the repo's perf trajectory. The committed baseline
// lives at BENCH_core.json; regenerate it on perf-relevant changes and let
// the diff tell the story.
//
// -baseline (with -benchjson) compares the fresh run against a committed
// baseline after writing it: every pairing is printed to stderr, and the
// process exits 1 if any benchmark regressed past its gate — ns/op by more
// than -maxregress percent (default 15), allocs/op by more than
// -maxallocregress (default 10), bytes/op by more than -maxbytesregress
// (default 15; negative disables a gate) — or a baseline benchmark is
// missing from the run. Wall time is noisy on shared runners; allocs/op is
// deterministic, so it carries the tighter default gate. CI's
// bench-regression job is exactly this invocation; an intentional slowdown
// lands by regenerating BENCH_core.json in the same change (see
// docs/PERF.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ursa/internal/bench"
	"ursa/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	jobs := flag.Int("j", 0, "workers per experiment (0: all cores, 1: sequential)")
	benchJSON := flag.String("benchjson", "", "run the reduction-loop benchmarks and write JSON timings to this path")
	compare := flag.String("compare", "", "gate a previously written -benchjson file against -baseline instead of re-running the suite")
	baseline := flag.String("baseline", "", "with -benchjson or -compare: gate the run against this committed baseline (exit 1 on regression)")
	maxRegress := flag.Float64("maxregress", 15, "with -baseline: max tolerated ns/op regression, percent (negative disables)")
	maxAllocRegress := flag.Float64("maxallocregress", 10, "with -baseline: max tolerated allocs/op regression, percent (negative disables)")
	maxBytesRegress := flag.Float64("maxbytesregress", 15, "with -baseline: max tolerated bytes/op regression, percent (negative disables)")
	flag.Parse()
	experiments.SetParallelism(*jobs)

	if *benchJSON != "" || *compare != "" {
		var entries []bench.Entry
		if *compare != "" {
			// Compare-only: gate an earlier run's JSON without paying for
			// the suite again (CI runs once, then gates ns and allocs in
			// separate named steps).
			if *baseline == "" {
				fmt.Fprintln(os.Stderr, "ursabench: -compare requires -baseline")
				os.Exit(1)
			}
			var err error
			if entries, err = bench.ReadJSON(*compare); err != nil {
				fmt.Fprintf(os.Stderr, "ursabench: %v\n", err)
				os.Exit(1)
			}
		} else {
			entries = bench.Run(bench.Suite())
			for _, e := range entries {
				fmt.Fprintln(os.Stderr, e)
			}
			if err := bench.WriteJSON(*benchJSON, entries); err != nil {
				fmt.Fprintf(os.Stderr, "ursabench: %v\n", err)
				os.Exit(1)
			}
		}
		if *baseline != "" {
			base, err := bench.ReadJSON(*baseline)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ursabench: %v\n", err)
				os.Exit(1)
			}
			gate := bench.Gate{
				MaxNsPct:     *maxRegress,
				MaxAllocsPct: *maxAllocRegress,
				MaxBytesPct:  *maxBytesRegress,
			}
			deltas, regressions, missing := bench.Compare(base, entries, gate)
			fmt.Fprintf(os.Stderr, "vs %s (gates: ns +%.0f%%, allocs +%.0f%%, bytes +%.0f%%):\n",
				*baseline, *maxRegress, *maxAllocRegress, *maxBytesRegress)
			for _, d := range deltas {
				fmt.Fprintln(os.Stderr, d)
			}
			for _, name := range missing {
				fmt.Fprintf(os.Stderr, "ursabench: baseline benchmark %q missing from this run\n", name)
			}
			if len(regressions) > 0 || len(missing) > 0 {
				for _, d := range regressions {
					fmt.Fprintf(os.Stderr, "ursabench: REGRESSION %s: %s\n", d.Name, strings.Join(d.Why, "; "))
				}
				os.Exit(1)
			}
			fmt.Fprintln(os.Stderr, "ursabench: no regressions")
		}
		return
	}
	if *baseline != "" {
		fmt.Fprintln(os.Stderr, "ursabench: -baseline requires -benchjson")
		os.Exit(1)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Println(e.ID)
		}
		return
	}

	selected := experiments.All()
	if flag.NArg() > 0 {
		selected = selected[:0]
		for _, id := range flag.Args() {
			e := experiments.ByID(id)
			if e == nil {
				fmt.Fprintf(os.Stderr, "ursabench: unknown experiment %q\n", id)
				os.Exit(1)
			}
			selected = append(selected, *e)
		}
	}

	failed := 0
	for _, e := range selected {
		start := time.Now()
		tbl, err := e.Run()
		if tbl != nil {
			fmt.Println(tbl)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ursabench: %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		// Timing goes to stderr: stdout must be byte-identical across -j
		// settings and runs.
		fmt.Fprintf(os.Stderr, "(%s in %v)\n", e.ID, time.Since(start).Round(time.Millisecond))
		fmt.Println()
	}
	if failed > 0 {
		os.Exit(1)
	}
}
