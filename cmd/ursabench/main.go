// Command ursabench regenerates every table and figure of the evaluation
// (see DESIGN.md's experiment index and EXPERIMENTS.md for the recorded
// outputs). Each experiment recomputes its results from scratch: the paper
// figures are checked exactly, and the constructed tables compare URSA
// against the phase-ordered baselines.
//
// Usage:
//
//	ursabench                        # run everything
//	ursabench -j 8                   # fan each experiment's jobs over 8 workers
//	ursabench T1 T2                  # run selected experiments
//	ursabench -list                  # list experiment ids
//	ursabench -benchjson BENCH_core.json
//	                                 # run the reduction-loop benchmarks
//	                                 # instead and write timings as JSON
//
// Tables go to stdout and are byte-identical at every -j setting; timing
// lines go to stderr.
//
// -benchjson runs internal/bench's suite (BenchmarkPickBest,
// BenchmarkReduceLarge; full vs incremental modes) through
// testing.Benchmark and writes one {name, ns/op, allocs/op, bytes/op}
// object per benchmark — the repo's perf trajectory. The committed baseline
// lives at BENCH_core.json; regenerate it on perf-relevant changes and let
// the diff tell the story.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ursa/internal/bench"
	"ursa/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	jobs := flag.Int("j", 0, "workers per experiment (0: all cores, 1: sequential)")
	benchJSON := flag.String("benchjson", "", "run the reduction-loop benchmarks and write JSON timings to this path")
	flag.Parse()
	experiments.SetParallelism(*jobs)

	if *benchJSON != "" {
		entries := bench.Run(bench.Suite())
		for _, e := range entries {
			fmt.Fprintln(os.Stderr, e)
		}
		if err := bench.WriteJSON(*benchJSON, entries); err != nil {
			fmt.Fprintf(os.Stderr, "ursabench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Println(e.ID)
		}
		return
	}

	selected := experiments.All()
	if flag.NArg() > 0 {
		selected = selected[:0]
		for _, id := range flag.Args() {
			e := experiments.ByID(id)
			if e == nil {
				fmt.Fprintf(os.Stderr, "ursabench: unknown experiment %q\n", id)
				os.Exit(1)
			}
			selected = append(selected, *e)
		}
	}

	failed := 0
	for _, e := range selected {
		start := time.Now()
		tbl, err := e.Run()
		if tbl != nil {
			fmt.Println(tbl)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ursabench: %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		// Timing goes to stderr: stdout must be byte-identical across -j
		// settings and runs.
		fmt.Fprintf(os.Stderr, "(%s in %v)\n", e.ID, time.Since(start).Round(time.Millisecond))
		fmt.Println()
	}
	if failed > 0 {
		os.Exit(1)
	}
}
