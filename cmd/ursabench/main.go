// Command ursabench regenerates every table and figure of the evaluation
// (see DESIGN.md's experiment index and EXPERIMENTS.md for the recorded
// outputs). Each experiment recomputes its results from scratch: the paper
// figures are checked exactly, and the constructed tables compare URSA
// against the phase-ordered baselines.
//
// Usage:
//
//	ursabench                        # run everything
//	ursabench -j 8                   # fan each experiment's jobs over 8 workers
//	ursabench T1 T2                  # run selected experiments
//	ursabench -list                  # list experiment ids
//	ursabench -benchjson BENCH_core.json
//	                                 # run the reduction-loop benchmarks
//	                                 # instead and write timings as JSON
//	ursabench -benchjson /tmp/now.json -baseline BENCH_core.json
//	                                 # ...then gate against the committed
//	                                 # baseline: exit 1 on any >15% ns/op
//	                                 # regression (-maxregress to adjust)
//
// Tables go to stdout and are byte-identical at every -j setting; timing
// lines go to stderr.
//
// -benchjson runs internal/bench's suite (BenchmarkPickBest,
// BenchmarkReduceLarge; full vs incremental modes) through
// testing.Benchmark and writes one {name, ns/op, allocs/op, bytes/op}
// object per benchmark — the repo's perf trajectory. The committed baseline
// lives at BENCH_core.json; regenerate it on perf-relevant changes and let
// the diff tell the story.
//
// -baseline (with -benchjson) compares the fresh run against a committed
// baseline after writing it: every pairing is printed to stderr, and the
// process exits 1 if any benchmark's ns/op regressed by more than
// -maxregress percent (default 15) or a baseline benchmark is missing
// from the run. CI's bench-regression job is exactly this invocation; an
// intentional slowdown lands by regenerating BENCH_core.json in the same
// change (see docs/PERF.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ursa/internal/bench"
	"ursa/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	jobs := flag.Int("j", 0, "workers per experiment (0: all cores, 1: sequential)")
	benchJSON := flag.String("benchjson", "", "run the reduction-loop benchmarks and write JSON timings to this path")
	baseline := flag.String("baseline", "", "with -benchjson: gate the run against this committed baseline (exit 1 on regression)")
	maxRegress := flag.Float64("maxregress", 15, "with -baseline: max tolerated ns/op regression, percent")
	flag.Parse()
	experiments.SetParallelism(*jobs)

	if *benchJSON != "" {
		entries := bench.Run(bench.Suite())
		for _, e := range entries {
			fmt.Fprintln(os.Stderr, e)
		}
		if err := bench.WriteJSON(*benchJSON, entries); err != nil {
			fmt.Fprintf(os.Stderr, "ursabench: %v\n", err)
			os.Exit(1)
		}
		if *baseline != "" {
			base, err := bench.ReadJSON(*baseline)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ursabench: %v\n", err)
				os.Exit(1)
			}
			deltas, regressions, missing := bench.Compare(base, entries, *maxRegress)
			fmt.Fprintf(os.Stderr, "vs %s (gate: +%.0f%%):\n", *baseline, *maxRegress)
			for _, d := range deltas {
				fmt.Fprintln(os.Stderr, d)
			}
			for _, name := range missing {
				fmt.Fprintf(os.Stderr, "ursabench: baseline benchmark %q missing from this run\n", name)
			}
			if len(regressions) > 0 || len(missing) > 0 {
				for _, d := range regressions {
					fmt.Fprintf(os.Stderr, "ursabench: REGRESSION %s\n", d)
				}
				os.Exit(1)
			}
			fmt.Fprintln(os.Stderr, "ursabench: no regressions")
		}
		return
	}
	if *baseline != "" {
		fmt.Fprintln(os.Stderr, "ursabench: -baseline requires -benchjson")
		os.Exit(1)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Println(e.ID)
		}
		return
	}

	selected := experiments.All()
	if flag.NArg() > 0 {
		selected = selected[:0]
		for _, id := range flag.Args() {
			e := experiments.ByID(id)
			if e == nil {
				fmt.Fprintf(os.Stderr, "ursabench: unknown experiment %q\n", id)
				os.Exit(1)
			}
			selected = append(selected, *e)
		}
	}

	failed := 0
	for _, e := range selected {
		start := time.Now()
		tbl, err := e.Run()
		if tbl != nil {
			fmt.Println(tbl)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ursabench: %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		// Timing goes to stderr: stdout must be byte-identical across -j
		// settings and runs.
		fmt.Fprintf(os.Stderr, "(%s in %v)\n", e.ID, time.Since(start).Round(time.Millisecond))
		fmt.Println()
	}
	if failed > 0 {
		os.Exit(1)
	}
}
