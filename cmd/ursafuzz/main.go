// Command ursafuzz runs the differential verification campaign: generate
// random seeded programs and machines, push them through every compilation
// pipeline, and cross-check each stage against the independent oracles in
// internal/check (brute-force width, schedule legality, transformation
// monotonicity, differential execution, and the exact solver's proven
// optimality bounds). Failures are shrunk to minimal
// reproducing cases and optionally written as ready-to-commit .ursafuzz
// regression files.
//
// Usage:
//
//	ursafuzz -n 10000 -seed 1 [-max-instrs 20] [-oracles width,diffexec]
//	         [-out testdata/fuzz] [-no-shrink] [-int-only] [-j N] [-v]
//
// The exit status is 0 iff no property violation was found.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ursa/internal/check"
)

func main() {
	var (
		n         = flag.Int("n", 1000, "number of random cases")
		seed      = flag.Int64("seed", 1, "base seed; case i uses seed+i")
		maxInstrs = flag.Int("max-instrs", 20, "maximum instructions per generated program")
		minInstrs = flag.Int("min-instrs", 3, "minimum instructions per generated program")
		intOnly   = flag.Bool("int-only", false, "generate integer-only programs")
		oracles   = flag.String("oracles", "", "comma-separated oracle subset (default: all)")
		out       = flag.String("out", "", "directory for shrunk .ursafuzz repro files")
		noShrink  = flag.Bool("no-shrink", false, "report failures without minimizing them")
		maxRepros = flag.Int("max-repros", 5, "shrunk repros kept per oracle")
		workers   = flag.Int("j", 0, "concurrent case checkers (0: all cores)")
		verbose   = flag.Bool("v", false, "log every violation as it is found")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "ursafuzz: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}

	var sel []string
	if *oracles != "" {
		for _, name := range strings.Split(*oracles, ",") {
			name = strings.TrimSpace(name)
			ok := false
			for _, known := range check.AllOracles {
				if name == known {
					ok = true
				}
			}
			if !ok {
				fmt.Fprintf(os.Stderr, "ursafuzz: unknown oracle %q (have %s)\n",
					name, strings.Join(check.AllOracles, ", "))
				os.Exit(2)
			}
			sel = append(sel, name)
		}
	}

	var log io.Writer
	if *verbose {
		log = os.Stderr
	}
	sum, err := check.Run(check.RunConfig{
		N:    *n,
		Seed: *seed,
		Gen: check.GenConfig{
			MinInstrs: *minInstrs,
			MaxInstrs: *maxInstrs,
			IntOnly:   *intOnly,
		},
		Oracles:   sel,
		Shrink:    !*noShrink,
		OutDir:    *out,
		MaxRepros: *maxRepros,
		Workers:   *workers,
		Log:       log,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ursafuzz: %v\n", err)
		os.Exit(1)
	}

	fmt.Println(sum)
	for _, f := range sum.Found {
		fmt.Printf("\nFAIL [%s] seed %d: %s\n", f.Oracle, f.Seed, f.Detail)
		if f.Path != "" {
			fmt.Printf("  repro: %s\n", f.Path)
		} else {
			fmt.Printf("%s", indent(check.FormatCase(f.Case)))
		}
	}
	if !sum.OK() {
		os.Exit(1)
	}
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "  " + strings.Join(lines, "\n  ") + "\n"
}
