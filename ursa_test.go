package ursa_test

import (
	"bytes"
	"strings"
	"testing"

	"ursa"
)

// TestQuickstart exercises the README's quickstart path end to end.
func TestQuickstart(t *testing.T) {
	f := ursa.PaperExample(true)
	g, err := ursa.BuildDAG(f.Blocks[0])
	if err != nil {
		t.Fatalf("BuildDAG: %v", err)
	}
	if got := ursa.FURequirement(g); got != 4 {
		t.Errorf("FU requirement = %d, want 4", got)
	}
	if got := ursa.RegRequirement(g); got != 5 {
		t.Errorf("register requirement = %d, want 5", got)
	}
	m := ursa.VLIW(2, 3)
	rep, err := ursa.Allocate(g, m)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if !rep.Fits {
		t.Fatalf("did not fit: %+v", rep.FinalWidths)
	}
	prog, err := ursa.Emit(g, m)
	if err != nil {
		t.Fatalf("Emit: %v", err)
	}
	res, err := ursa.Simulate(prog, ursa.PaperInit())
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if got := res.State.Mem[ursa.Addr{Sym: "Z", Off: 0}].Int(); got != 28 {
		t.Errorf("Z[0] = %d, want 28", got)
	}
}

func TestRequirementsMap(t *testing.T) {
	f := ursa.PaperExample(false)
	g, err := ursa.BuildDAG(f.Blocks[0])
	if err != nil {
		t.Fatal(err)
	}
	req := ursa.Requirements(g, ursa.VLIW(4, 8))
	if req["fu"] != 4 || req["reg.int"] != 5 {
		t.Errorf("Requirements = %v", req)
	}
}

func TestAllocateOptsTrace(t *testing.T) {
	f := ursa.PaperExample(true)
	g, err := ursa.BuildDAG(f.Blocks[0])
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ursa.AllocateOpts(g, ursa.VLIW(2, 4), ursa.AllocOptions{Trace: &buf}); err != nil {
		t.Fatalf("AllocateOpts: %v", err)
	}
	if !strings.Contains(buf.String(), "ursa:") {
		t.Error("trace output empty")
	}
}

func TestKernelFacade(t *testing.T) {
	k := ursa.KernelByName("dot")
	if k == nil {
		t.Fatal("dot kernel missing")
	}
	f, err := ursa.ParseKernel(k.Source, 0)
	if err != nil {
		t.Fatalf("ParseKernel: %v", err)
	}
	st, err := ursa.EvaluateFunc(f, ursa.VLIW(4, 8), ursa.URSA, k.State(3), 1_000_000)
	if err != nil {
		t.Fatalf("EvaluateFunc: %v", err)
	}
	if !st.Verified {
		t.Error("kernel not verified")
	}
}

func TestMethodsComparable(t *testing.T) {
	f := ursa.PaperExample(true)
	m := ursa.VLIW(4, 3)
	cycles := map[ursa.Method]int{}
	for _, method := range ursa.Methods {
		st, err := ursa.EvaluateBlock(f.Blocks[0], m, method, ursa.PaperInit())
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		cycles[method] = st.Cycles
	}
	if cycles[ursa.URSA] > cycles[ursa.Prepass] {
		t.Errorf("URSA (%d cycles) slower than prepass (%d) at 3 registers",
			cycles[ursa.URSA], cycles[ursa.Prepass])
	}
}

func TestDotFacade(t *testing.T) {
	f := ursa.PaperExample(false)
	g, _ := ursa.BuildDAG(f.Blocks[0])
	if !strings.Contains(ursa.Dot(g, "x"), "digraph") {
		t.Error("dot output malformed")
	}
}
