package ursa_test

import (
	"math/rand"
	"testing"

	"ursa"
	"ursa/internal/dag"
	"ursa/internal/pipeline"
	"ursa/internal/vliwsim"
	"ursa/internal/workload"
)

// TestStressLargeBlocks pushes blocks far past kernel size through the full
// URSA stack — 120-200 instructions — on several machines, with end-to-end
// verification. Skipped in -short mode.
func TestStressLargeBlocks(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	rng := rand.New(rand.NewSource(2026))
	machines := []*ursa.Machine{
		ursa.VLIW(4, 8), ursa.VLIW(8, 16), ursa.VLIW(2, 6),
	}
	for trial := 0; trial < 4; trial++ {
		n := 120 + rng.Intn(80)
		bias := 0.2 + rng.Float64()*0.6
		f := workload.RandomBlock(rng, n, bias)
		m := machines[trial%len(machines)]
		g, err := dag.Build(f.Blocks[0])
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rep, err := ursa.Allocate(g, m)
		if err != nil {
			t.Fatalf("trial %d: Allocate: %v", trial, err)
		}
		prog, err := ursa.Emit(g, m)
		if err != nil {
			t.Fatalf("trial %d: Emit: %v", trial, err)
		}
		init := workload.RandomInit(int64(trial))
		if _, err := vliwsim.Verify(prog, f.Blocks[0], init); err != nil {
			t.Fatalf("trial %d (n=%d, %s, fits=%v): %v", trial, n, m.Name, rep.Fits, err)
		}
	}
}

// TestStressDeepLoops runs a long-trip-count kernel (thousands of block
// executions) through every pipeline.
func TestStressDeepLoops(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	f, err := ursa.ParseKernel(`
		var s = 0;
		for i = 0 to 2000 {
			var x = a[i % 16];
			if (x > 0) { s = s + x * 3; } else { s = s - x; }
			b[i % 16] = s;
		}
		out[0] = s;
	`, 0)
	if err != nil {
		t.Fatal(err)
	}
	init := ursa.NewState()
	for i := int64(0); i < 16; i++ {
		init.StoreInt("a", i, i*7-40)
	}
	for _, method := range ursa.Methods {
		st, err := pipeline.EvaluateFunc(f, ursa.VLIW(2, 5), method, init.Clone(), 50_000_000, pipeline.Options{})
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if st.Cycles < 2000 {
			t.Errorf("%s: implausibly few cycles %d for 2000 iterations", method, st.Cycles)
		}
	}
}

// TestStressNestedHammocks builds nested diamond structures and checks the
// hammock analysis, the prioritized measurement, and the driver cope with
// deep nesting. Skipped in -short mode.
func TestStressNestedHammocks(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	// Build nested diamonds in IR: each level splits one value into two
	// parallel computations and rejoins.
	src := `
entry:
	v0 = load A[0]
	a1 = muli v0, 3
	b1 = addi v0, 7
	a2 = muli a1, 3
	b2 = addi a1, 1
	j1 = add a2, b2
	a3 = muli b1, 5
	b3 = subi b1, 2
	j2 = add a3, b3
	a4 = muli j1, 2
	b4 = xori j1, 9
	j3 = add a4, b4
	a5 = muli j2, 2
	b5 = xori j2, 9
	j4 = add a5, b5
	top = add j3, j4
	store O[0], top
`
	f := ursa.MustParseIR(src)
	g, err := ursa.BuildDAG(f.Blocks[0])
	if err != nil {
		t.Fatal(err)
	}
	hs := g.Hammocks()
	if len(hs) < 3 {
		t.Errorf("expected several nested hammocks, found %d", len(hs))
	}
	maxLevel := 0
	for _, h := range hs {
		if h.Level > maxLevel {
			maxLevel = h.Level
		}
	}
	if maxLevel == 0 {
		t.Error("no nesting detected")
	}
	for _, m := range []*ursa.Machine{ursa.VLIW(2, 3), ursa.VLIW(4, 4)} {
		g2, _ := ursa.BuildDAG(f.Blocks[0])
		if _, err := ursa.Allocate(g2, m); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		prog, err := ursa.Emit(g2, m)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		init := ursa.NewState()
		init.StoreInt("A", 0, 11)
		if _, err := vliwsim.Verify(prog, f.Blocks[0], init); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
	}
}
