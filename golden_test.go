package ursa_test

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"ursa"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_results.txt")

// goldenLine renders one measurement row.
func goldenLine(kernel string, method ursa.Method, st *ursa.Stats) string {
	return fmt.Sprintf("%s %s cycles=%d spills=%d regs=%d",
		kernel, method, st.Cycles, st.SpillOps, st.RegsUsed[0]+st.RegsUsed[1])
}

// computeGolden evaluates a fixed slice of the suite on a fixed machine.
// Every quantity involved is deterministic (seeded inputs, deterministic
// heuristics), so this doubles as a cross-platform reproducibility check.
func computeGolden(t *testing.T) []string {
	t.Helper()
	m := ursa.VLIW(4, 6)
	var lines []string
	for _, name := range []string{"dot", "poly", "stencil3", "horner", "cmul"} {
		k := ursa.KernelByName(name)
		f, err := ursa.ParseKernel(k.Source, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, method := range ursa.Methods {
			st, err := ursa.EvaluateFunc(f, m, method, k.State(1), 50_000_000)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, method, err)
			}
			lines = append(lines, goldenLine(name, method, st))
		}
	}
	return lines
}

// TestGoldenResults pins the headline measurements: any heuristic change
// that shifts cycles, spills, or register usage shows up as a diff here.
// Refresh intentionally with `go test -run Golden -update .`.
func TestGoldenResults(t *testing.T) {
	got := computeGolden(t)
	const path = "testdata/golden_results.txt"
	if *updateGolden {
		if err := os.WriteFile(path, []byte(strings.Join(got, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	want := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(want) != len(got) {
		t.Fatalf("golden has %d rows, computed %d (refresh with -update)", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("row %d drifted:\n  golden:   %s\n  computed: %s", i, want[i], got[i])
		}
	}
}
